"""The :class:`Run` object — durable, comparable record of one training run.

A ``Run`` owns a run directory ``<root>/<run_id>/`` holding three
artifacts:

* ``manifest.json`` — model + train config, seed, dataset fingerprint,
  package/python versions, start/end time, final status and summary;
* ``events.jsonl`` — ordered structured events (spans, step metrics,
  messages, health findings), one JSON object per line;
* ``metrics.jsonl`` — one record per epoch, the tabular view ``repro runs
  show``/``diff`` and the SVG loss-curve exporter consume.

Training loops receive either a real ``Run`` or the :data:`NULL_RUN`
singleton, which shares the full interface but does nothing — the
disabled path must keep training bit-identical and overhead-free
(mirroring ``repro.nn.profiler``'s disabled-is-free contract).

Spans nest with profiler scopes: ``with run.span("epoch")`` both emits
``span_start``/``span_end`` events and opens a ``repro.nn.profiler`` scope
named ``run/<name>``, so op-level profiles line up with run-level traces.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import pathlib
import platform
import threading
import time
import traceback
import uuid

import numpy as np

from .. import __version__
from ..nn import profiler
from ..obs import trace as obs_trace
from ..utils.fileio import atomic_write_text
from .health import default_guards
from .sinks import JsonlSink, LoggingSink, MemorySink, Sink

__all__ = ["Run", "NullRun", "NULL_RUN", "dataset_fingerprint",
           "EVENT_TYPES", "MANIFEST_NAME", "EVENTS_NAME", "METRICS_NAME"]

MANIFEST_NAME = "manifest.json"
EVENTS_NAME = "events.jsonl"
METRICS_NAME = "metrics.jsonl"

EVENT_TYPES = ("run_start", "run_end", "span_start", "span_end",
               "step", "epoch", "message", "health", "metric",
               "checkpoint", "recovery", "crash", "alert",
               "breaker", "swap", "swap_shadow")

_STATUS = ("running", "completed", "failed", "crashed")


def _config_dict(config) -> dict | None:
    if config is None:
        return None
    if dataclasses.is_dataclass(config) and not isinstance(config, type):
        return dataclasses.asdict(config)
    if isinstance(config, dict):
        return dict(config)
    return {"repr": repr(config)}


def dataset_fingerprint(data) -> dict | None:
    """Cheap, stable identity for the training data.

    Hashes shape/dtype plus an edge sample of the raw bytes (first and
    last 64 KiB) — enough to distinguish datasets, splits and scalings
    without re-reading gigabytes.  Understands plain arrays and the
    windowed/split dataset containers used by the training loops.
    """
    if data is None:
        return None
    # Out-of-core stores know their own identity (manifest checksums) —
    # never pull gigabytes of memory-mapped windows through asarray.
    own_fingerprint = getattr(data, "dataset_fingerprint", None)
    if callable(own_fingerprint):
        return own_fingerprint()
    # Windowed or split containers expose their backing arrays.
    for attribute in ("series", "x_train"):
        inner = getattr(data, attribute, None)
        if inner is not None:
            fp = dataset_fingerprint(np.asarray(inner))
            fp["container"] = type(data).__name__
            return fp
    if getattr(data, "train", None) is not None and not isinstance(data, np.ndarray):
        fp = dataset_fingerprint(data.train)
        fp["container"] = type(data).__name__
        return fp
    array = np.ascontiguousarray(np.asarray(data))
    raw = array.view(np.uint8).reshape(-1)
    digest = hashlib.sha256()
    digest.update(str(array.shape).encode())
    digest.update(str(array.dtype).encode())
    digest.update(raw[:65536].tobytes())
    if raw.size > 65536:
        digest.update(raw[-65536:].tobytes())
    return {"shape": list(array.shape), "dtype": str(array.dtype),
            "sha256": digest.hexdigest()[:16]}


class _SpanHandle:
    """Context manager for one traced region (see :meth:`Run.span`).

    Every real span mints ids from the :mod:`repro.obs.trace` scheme —
    ``trace_id``/``span_id``/``parent_id`` ride on the ``span_start``/
    ``span_end`` events, and the span's context becomes *current* for
    its body, so serve traces opened inside a run (and nested run
    spans) chain off the same ids.  When the observability layer is
    enabled the completed span is also recorded in the process trace
    log.
    """

    __slots__ = ("_run", "name", "attrs", "_start", "_profiler_scope",
                 "ctx", "_trace_token")

    def __init__(self, run: "Run", name: str, attrs: dict):
        self._run = run
        self.name = name
        self.attrs = attrs
        self._start = 0.0
        self._profiler_scope = None
        self.ctx: obs_trace.TraceContext | None = None
        self._trace_token = None

    def __enter__(self) -> "_SpanHandle":
        run = self._run
        self.ctx = obs_trace.child_context()
        self._trace_token = obs_trace.set_current(self.ctx)
        run._span_stack.append(self.name)
        run.emit("span_start", span=self.name, path=run.span_path(),
                 depth=len(run._span_stack), **self.ctx.as_dict(),
                 **self.attrs)
        self._profiler_scope = profiler.scope(f"run/{self.name}")
        self._profiler_scope.__enter__()
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        elapsed = time.perf_counter() - self._start
        self._profiler_scope.__exit__(exc_type, exc, tb)
        run = self._run
        path = run.span_path()
        run._span_stack.pop()
        obs_trace.reset(self._trace_token)
        run.emit("span_end", span=self.name, path=path,
                 depth=len(run._span_stack) + 1, seconds=elapsed,
                 **self.ctx.as_dict(),
                 error=(None if exc_type is None else exc_type.__name__))
        if obs_trace.enabled():
            obs_trace.trace_log().record(obs_trace.SpanRecord(
                name=f"run/{self.name}", trace_id=self.ctx.trace_id,
                span_id=self.ctx.span_id, parent_id=self.ctx.parent_id,
                thread=threading.current_thread().name,
                start_unix=time.time() - elapsed, seconds=elapsed,
                attrs=dict(self.attrs)))
        return False


class Run:
    """A live (or loaded) training run; see the module docstring."""

    enabled = True

    def __init__(self, run_id: str, directory: pathlib.Path | None,
                 manifest: dict, sinks: list[Sink]):
        self.run_id = run_id
        self.directory = pathlib.Path(directory) if directory is not None else None
        self.manifest = manifest
        self.sinks = list(sinks)
        self.guards = default_guards()
        self.events: list[dict] = []       # populated by load()
        self.epoch_metrics: list[dict] = []
        self.health_events: list[dict] = []
        self.status = manifest.get("status", "running")
        self._seq = 0
        self._span_stack: list[str] = []
        self._metrics_sink = (JsonlSink(self.directory / METRICS_NAME)
                              if self.directory is not None else None)
        self._finished = False

    # -- construction ---------------------------------------------------
    @classmethod
    def create(cls, root="results/runs", name: str | None = None,
               model_config=None, train_config=None, seed: int | None = None,
               data=None, tags: dict | None = None,
               sinks: list[Sink] | None = None,
               log_to_console: bool = False) -> "Run":
        """Open a new run directory under ``root`` and emit ``run_start``.

        ``sinks`` extends (not replaces) the default JSONL sink; pass
        ``log_to_console=True`` to mirror events through stdlib logging.
        """
        stamp = time.strftime("%Y%m%d-%H%M%S")
        suffix = uuid.uuid4().hex[:6]
        run_id = f"{stamp}-{suffix}" if name is None else f"{stamp}-{name}-{suffix}"
        directory = pathlib.Path(root) / run_id
        directory.mkdir(parents=True, exist_ok=True)
        manifest = {
            "run_id": run_id,
            "name": name,
            "status": "running",
            "created_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
            "created_unix": time.time(),
            "finished_at": None,
            "package_version": __version__,
            "python_version": platform.python_version(),
            "numpy_version": np.__version__,
            "seed": seed,
            "model_config": _config_dict(model_config),
            "train_config": _config_dict(train_config),
            "dataset": dataset_fingerprint(data),
            "tags": dict(tags or {}),
            "summary": {},
            "health": [],
        }
        all_sinks: list[Sink] = [JsonlSink(directory / EVENTS_NAME)]
        if log_to_console:
            all_sinks.append(LoggingSink())
        all_sinks.extend(sinks or [])
        run = cls(run_id, directory, manifest, all_sinks)
        run._write_manifest()
        run.emit("run_start", run_id=run_id, name=name, seed=seed)
        return run

    @classmethod
    def in_memory(cls, **kwargs) -> "Run":
        """Directory-less run backed by a :class:`MemorySink` (for tests)."""
        sink = MemorySink()
        manifest = {"run_id": "in-memory", "status": "running",
                    "summary": {}, "health": [],
                    "model_config": _config_dict(kwargs.get("model_config")),
                    "train_config": _config_dict(kwargs.get("train_config"))}
        run = cls("in-memory", None, manifest, [sink])
        run.memory = sink
        run.emit("run_start", run_id=run.run_id)
        return run

    @classmethod
    def load(cls, directory) -> "Run":
        """Re-hydrate a finished (or crashed) run from its directory."""
        directory = pathlib.Path(directory)
        manifest_path = directory / MANIFEST_NAME
        if not manifest_path.is_file():
            raise FileNotFoundError(f"no run manifest at {manifest_path}")
        manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
        run = cls(manifest.get("run_id", directory.name), directory, manifest, [])
        run._finished = True  # loaded runs are read-only
        events_path = directory / EVENTS_NAME
        if events_path.is_file():
            run.events = JsonlSink.read(events_path)
        metrics_path = directory / METRICS_NAME
        if metrics_path.is_file():
            run.epoch_metrics = JsonlSink.read(metrics_path)
        else:
            run.epoch_metrics = [e for e in run.events if e.get("type") == "epoch"]
        run.health_events = [e for e in run.events if e.get("type") == "health"]
        run.status = manifest.get("status", "unknown")
        return run

    # -- event pipeline -------------------------------------------------
    def emit(self, type: str, **payload) -> dict:
        """Build one structured event and fan it out to every sink."""
        if self._finished:
            raise RuntimeError(f"run {self.run_id} is finished/read-only")
        self._seq += 1
        event = {"type": type, "seq": self._seq, "time": time.time(), **payload}
        for sink in self.sinks:
            sink.emit(event)
        return event

    def message(self, text: str, **payload) -> None:
        self.emit("message", text=text, **payload)

    def span(self, name: str, **attrs) -> _SpanHandle:
        """``with run.span("epoch", index=3):`` — traced, profiler-nested."""
        return _SpanHandle(self, name, attrs)

    def span_path(self) -> str:
        return "/".join(self._span_stack)

    # -- metrics --------------------------------------------------------
    def log_step(self, step: int, **metrics) -> None:
        """Record per-step metrics (loss components, grad norm, ...)."""
        self._check_health(metrics, phase="step", index=step)
        self.emit("step", step=step, **metrics)

    def log_epoch(self, epoch: int, **metrics) -> None:
        """Record one epoch's aggregate metrics (also to ``metrics.jsonl``)."""
        self._check_health(metrics, phase="epoch", index=epoch)
        record = {"epoch": epoch, **metrics}
        self.epoch_metrics.append(record)
        event = self.emit("epoch", **record)
        if self._metrics_sink is not None:
            self._metrics_sink.emit(event)

    def log_summary(self, **metrics) -> None:
        """Merge final scalar results into the manifest summary."""
        self.manifest["summary"].update(
            {key: _jsonable(value) for key, value in metrics.items()})
        self.emit("metric", **metrics)

    def _check_health(self, metrics: dict, phase: str, index: int) -> None:
        for guard in self.guards:
            failure = guard(metrics)
            if failure is not None:
                self.health_events.append(failure)
                self.manifest["health"].append(
                    {**failure, "phase": phase, "index": index})
                self.emit("health", phase=phase, index=index, **failure)

    @property
    def healthy(self) -> bool:
        return not self.health_events

    def record_crash(self, error: BaseException) -> None:
        """Mark the run ``crashed``: emit a structured traceback event and
        seal the manifest, so an unhandled exception never leaves the run
        dangling as ``running`` with no trace of what killed it.

        Safe to call from any ``except`` block; idempotent once finished.
        """
        if self._finished:
            return
        frames = traceback.format_exception(type(error), error,
                                            error.__traceback__)
        self.emit("crash", error=type(error).__name__, detail=str(error),
                  traceback=frames)
        self.manifest["crash"] = {"error": type(error).__name__,
                                  "detail": str(error),
                                  "traceback": frames}
        self.finish("crashed")

    # -- lifecycle ------------------------------------------------------
    def finish(self, status: str = "completed", **summary) -> None:
        """Seal the run: final summary, manifest rewrite, sinks closed."""
        if self._finished:
            return
        if status not in _STATUS:
            raise ValueError(f"status must be one of {_STATUS}, got {status!r}")
        if summary:
            self.log_summary(**summary)
        self.emit("run_end", status=status, healthy=self.healthy)
        self.status = self.manifest["status"] = status
        self.manifest["finished_at"] = time.strftime("%Y-%m-%dT%H:%M:%S%z")
        self.manifest["wall_clock_seconds"] = (
            time.time() - self.manifest.get("created_unix", time.time()))
        self._write_manifest()
        self._finished = True
        for sink in self.sinks:
            sink.close()
        if self._metrics_sink is not None:
            self._metrics_sink.close()

    def __enter__(self) -> "Run":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is None:
            self.finish("completed")
        else:
            # Structured crash record instead of a silent half-written run
            # dir left dangling as "running".
            self.emit("health", check="exception", phase="run",
                      error=exc_type.__name__, detail=str(exc))
            self.record_crash(exc)
        return False

    def _write_manifest(self) -> None:
        if self.directory is not None:
            atomic_write_text(self.directory / MANIFEST_NAME,
                              json.dumps(self.manifest, indent=2,
                                         sort_keys=True, default=_jsonable))

    # -- convenience ----------------------------------------------------
    def final_epoch(self) -> dict | None:
        return self.epoch_metrics[-1] if self.epoch_metrics else None

    def metric_series(self, key: str) -> list[tuple[float, float]]:
        """``[(epoch, value), ...]`` for one epoch-metric key (for charts)."""
        points = []
        for record in self.epoch_metrics:
            if key in record and isinstance(record[key], (int, float)):
                points.append((float(record.get("epoch", len(points))),
                               float(record[key])))
        return points


def _jsonable(value):
    if isinstance(value, (np.floating, np.integer)):
        return value.item()
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, pathlib.Path):
        return str(value)
    return value


class _NullSpan:
    """Reusable, allocation-free span for the disabled path."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class NullRun:
    """Do-nothing stand-in sharing :class:`Run`'s interface.

    Training loops call ``run.log_epoch(...)`` unconditionally; when
    telemetry is off they receive this object, whose methods return
    immediately — no events, no clocks, no files, no extra compute.
    Expensive *derived* metrics (grad norms, update ratios) must
    additionally be gated on ``run.enabled`` at the call site so their
    inputs are never computed either.
    """

    enabled = False
    run_id = None
    directory = None
    status = "disabled"
    healthy = True

    def emit(self, type: str, **payload) -> None:
        pass

    def message(self, text: str, **payload) -> None:
        pass

    def span(self, name: str, **attrs) -> _NullSpan:
        return _NULL_SPAN

    def log_step(self, step: int, **metrics) -> None:
        pass

    def log_epoch(self, epoch: int, **metrics) -> None:
        pass

    def log_summary(self, **metrics) -> None:
        pass

    def finish(self, status: str = "completed", **summary) -> None:
        pass

    def record_crash(self, error: BaseException) -> None:
        pass

    def __enter__(self) -> "NullRun":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


NULL_RUN = NullRun()
