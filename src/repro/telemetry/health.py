"""Health guards: turn silent training failures into structured events.

A guard is a callable ``guard(metrics: dict) -> dict | None``; it receives
every step/epoch metric record and returns a failure payload when it
detects something wrong.  The :class:`~repro.telemetry.run.Run` records the
payload as a ``health`` event (and marks the run unhealthy) instead of the
run dying silently with ``nan`` losses in an unread console.

Guards are deliberately pure observers — they never raise and never stop
training themselves; policies (abort, alert) belong to the caller.
"""

from __future__ import annotations

import math

__all__ = ["nan_guard", "DivergenceGuard", "default_guards"]

_WATCHED_PREFIXES = ("total", "predictive", "contrastive", "loss")


def _watched(metrics: dict) -> dict:
    return {key: value for key, value in metrics.items()
            if isinstance(value, (int, float))
            and any(key == p or key.startswith(p) for p in _WATCHED_PREFIXES)}


def nan_guard(metrics: dict) -> dict | None:
    """Flag the first non-finite loss component (NaN or ±inf)."""
    for key, value in _watched(metrics).items():
        if not math.isfinite(value):
            return {"check": "non_finite_loss", "metric": key,
                    "value": repr(float(value))}
    return None


class DivergenceGuard:
    """Flag a loss that blows up relative to the best value seen so far.

    ``factor`` is how many times worse than the best observed loss the
    current value must be before it counts as divergence; ``warmup``
    records to skip before judging (early losses are legitimately large).
    Stateful, so each run needs its own instance.
    """

    def __init__(self, metric: str = "total", factor: float = 10.0,
                 warmup: int = 1):
        if factor <= 1.0:
            raise ValueError("divergence factor must be > 1")
        if warmup < 0:
            raise ValueError("warmup must be >= 0")
        self.metric = metric
        self.factor = factor
        self.warmup = warmup
        self.best: float | None = None
        self._seen = 0

    def __call__(self, metrics: dict) -> dict | None:
        value = metrics.get(self.metric)
        if not isinstance(value, (int, float)) or not math.isfinite(value):
            return None  # nan_guard owns non-finite values
        self._seen += 1
        if self.best is None or value < self.best:
            self.best = float(value)
        if self._seen <= self.warmup:
            return None
        # abs() keeps the threshold meaningful for losses near zero or
        # negative (e.g. log-likelihoods).
        threshold = self.best + self.factor * max(abs(self.best), 1e-8)
        if value > threshold:
            return {"check": "divergence", "metric": self.metric,
                    "value": float(value), "best": self.best,
                    "factor": self.factor}
        return None


def default_guards() -> list:
    """Fresh guard set for a new run (guards can be stateful)."""
    return [nan_guard, DivergenceGuard()]
