"""Console reporting through stdlib ``logging`` instead of bare ``print``.

Training loops and table printers report through :func:`console_log`; the
``repro.console`` logger renders bare messages (no timestamps or level
prefixes) to the *current* ``sys.stdout``, so ``verbose=True`` output looks
exactly like the old ``print`` lines, remains capturable by pytest's
``capsys``, and can be silenced or redirected with ordinary ``logging``
configuration (e.g. ``logging.getLogger("repro.console").disabled = True``).
"""

from __future__ import annotations

import logging
import sys

__all__ = ["console_log", "get_console_logger"]

_CONSOLE_NAME = "repro.console"


class _CurrentStdoutHandler(logging.StreamHandler):
    """StreamHandler that always writes to the *current* ``sys.stdout``.

    Resolving the stream at emit time (instead of capturing it at handler
    construction) keeps output visible to tools that swap ``sys.stdout``
    after import — pytest's ``capsys``, ``contextlib.redirect_stdout``.
    """

    def __init__(self):
        super().__init__(stream=sys.stdout)

    @property
    def stream(self):
        return sys.stdout

    @stream.setter
    def stream(self, value):  # StreamHandler.__init__ assigns; ignore it.
        pass

    def handleError(self, record):
        # `repro runs ... | head` closes the pipe mid-stream; logging would
        # print a full traceback per record where print() stays quiet.
        if isinstance(sys.exc_info()[1], BrokenPipeError):
            return
        super().handleError(record)


def get_console_logger() -> logging.Logger:
    """The ``repro.console`` logger, configured on first use."""
    logger = logging.getLogger(_CONSOLE_NAME)
    if not logger.handlers:
        handler = _CurrentStdoutHandler()
        handler.setFormatter(logging.Formatter("%(message)s"))
        logger.addHandler(handler)
        logger.setLevel(logging.INFO)
        logger.propagate = False
    return logger


def console_log(message: str = "") -> None:
    """Print-compatible reporting line (message only, newline-terminated)."""
    get_console_logger().info("%s", message)
