"""The unified training driver API (PR 9): one options object, one session.

The training entry points grew organically — ``pretrain`` took a
``PretrainConfig`` plus ``run=``/``hooks=``, fine-tuning took eleven
kwargs, transfer took a third shape, and new cross-cutting wiring
(``prefetch``, ``checkpoint``, ``telemetry``, now ``distributed``) had to
be threaded through each one separately.  :class:`TrainOptions` composes
all of it in one dataclass, and :class:`TrainSession` carries the model
across phases::

    from repro.train import TrainOptions, TrainSession

    session = TrainSession(TimeDRLConfig(seq_len=64, input_channels=7))
    session.pretrain(windows, TrainOptions(pretrain=PretrainConfig(epochs=5),
                                           checkpoint=True, distributed=4))
    result = session.finetune(forecasting_data)   # reuses the pretrained model

The old free functions (``repro.core.pretrain``,
``fine_tune_forecasting``, ``fine_tune_classification``,
``transfer_forecasting``) still work but emit ``DeprecationWarning`` and
delegate here; ``tests/train/test_session.py`` locks the delegation to be
bit-identical.  See ``docs/training.md`` for the migration table.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from ..checkpoint.config import CheckpointConfig
from ..core.config import (
    PretrainConfig,
    RuntimeOptions,
    TimeDRLConfig,
    _coerce_checkpoint,
)
from ..core.model import TimeDRL

__all__ = ["TrainOptions", "TrainSession"]

# RuntimeOptions field → PretrainConfig field (same names by design).
_RUNTIME_FIELDS = ("verbose", "profile", "telemetry", "run_root", "run_name",
                   "log_every", "checkpoint")


@dataclass
class TrainOptions:
    """Everything a training phase can be configured with, in one place.

    Every field defaults to "no opinion" (``None``): an options object
    built with only ``pretrain=some_config`` resolves to *exactly* that
    config object, unchanged — which is what makes the deprecated
    free-function shims bit-identical to the facade.

    Precedence for the pre-training config, highest first:

    1. the individual override fields (``checkpoint``, ``telemetry``,
       ``prefetch``, ``profile``, ``verbose``, ``run_root``);
    2. the bundled ``runtime`` (a :class:`RuntimeOptions`), which sets
       all seven runtime fields at once;
    3. the base ``pretrain`` config (or ``PretrainConfig()`` defaults).
    """

    # base pre-training config (PretrainConfig, dict, or None = defaults)
    pretrain: PretrainConfig | dict | None = None
    # data-parallel workers: None/1 = in-process, int/dict/DistributedConfig
    distributed: object = None
    # cross-cutting wiring (None = inherit from runtime/pretrain)
    runtime: RuntimeOptions | dict | None = None
    checkpoint: CheckpointConfig | bool | dict | None = None
    telemetry: bool | None = None
    prefetch: bool | None = None
    profile: bool | None = None
    verbose: bool | None = None
    run_root: str | None = None
    run: object = None            # caller-owned telemetry Run
    hooks: object = None          # TrainingHooks (or {rank: hooks} when distributed)
    # fine-tuning / transfer knobs (None = the task's own default)
    label_fraction: float = 1.0
    epochs: int | None = None
    batch_size: int | None = None
    learning_rate: float | None = None
    encoder_lr_scale: float = 0.1
    seed: int = 0
    alpha: float = 1.0            # ridge strength for transfer probes

    def resolved_pretrain_config(self) -> PretrainConfig:
        """Fold ``runtime`` and the override fields into the base config.

        With no overrides the base config object is returned *as is*
        (same identity), so a caller's carefully constructed
        ``PretrainConfig`` is never copied or perturbed.
        """
        config = self.pretrain
        if isinstance(config, dict):
            config = PretrainConfig(**config)
        if config is None:
            config = PretrainConfig()
        overrides = {}
        if self.runtime is not None:
            runtime = (RuntimeOptions(**self.runtime)
                       if isinstance(self.runtime, dict) else self.runtime)
            overrides.update({name: getattr(runtime, name)
                              for name in _RUNTIME_FIELDS})
        if self.checkpoint is not None:
            overrides["checkpoint"] = _coerce_checkpoint(self.checkpoint)
        if self.telemetry is not None:
            overrides["telemetry"] = self.telemetry
        if self.prefetch is not None:
            overrides["prefetch"] = self.prefetch
        if self.profile is not None:
            overrides["profile"] = self.profile
        if self.verbose is not None:
            overrides["verbose"] = self.verbose
        if self.run_root is not None:
            overrides["run_root"] = self.run_root
        if not overrides:
            return config
        return dataclasses.replace(config, **overrides)

    def resolved_runtime(self) -> RuntimeOptions | None:
        """The fine-tuning counterpart: a ``RuntimeOptions`` bundle, or
        ``None`` when nothing runtime-shaped was configured (so the task
        driver's own legacy kwargs stay authoritative)."""
        if self.runtime is not None:
            runtime = (RuntimeOptions(**self.runtime)
                       if isinstance(self.runtime, dict) else self.runtime)
            overrides = {}
            if self.checkpoint is not None:
                overrides["checkpoint"] = _coerce_checkpoint(self.checkpoint)
            if self.profile is not None:
                overrides["profile"] = self.profile
            if self.verbose is not None:
                overrides["verbose"] = self.verbose
            return (dataclasses.replace(runtime, **overrides)
                    if overrides else runtime)
        if (self.checkpoint is None and self.profile is None
                and self.verbose is None and self.telemetry is None
                and self.run_root is None):
            return None
        return RuntimeOptions(
            verbose=bool(self.verbose),
            profile=bool(self.profile),
            telemetry=bool(self.telemetry),
            run_root=self.run_root or "results/runs",
            checkpoint=_coerce_checkpoint(
                None if self.checkpoint is None else self.checkpoint))


class TrainSession:
    """One model's journey through pretrain → finetune/transfer.

    The session holds the model configuration and (after ``pretrain`` or
    ``from_checkpoint``) the live model, so downstream phases don't need
    it re-passed.  Per-call ``options`` override the session's default
    options for that call only.
    """

    def __init__(self, model_config: TimeDRLConfig,
                 options: TrainOptions | None = None,
                 model: TimeDRL | None = None):
        self.model_config = model_config
        self.options = options or TrainOptions()
        self.model = model
        self.last_result = None

    @classmethod
    def from_checkpoint(cls, source, options: TrainOptions | None = None
                        ) -> "TrainSession":
        """Open a session around a checkpointed model.

        ``source`` is anything
        :func:`repro.checkpoint.resolve_checkpoint_source` accepts: a
        ``ckpt-*.npz`` file, a checkpoint directory, or a telemetry run
        id/directory.  The model architecture is rebuilt from the
        checkpoint's own ``model_config`` metadata.
        """
        from ..checkpoint.manager import resolve_checkpoint_source

        state, meta, __ = resolve_checkpoint_source(source)
        model_config = TimeDRLConfig(**meta["model_config"])
        model = TimeDRL(model_config)
        model.load_state_dict(state.model_state, strict=True)
        model.eval()
        return cls(model_config, options=options, model=model)

    def _opts(self, options: TrainOptions | None) -> TrainOptions:
        return options if options is not None else self.options

    # -- phases ---------------------------------------------------------
    def pretrain(self, data, options: TrainOptions | None = None):
        """Self-supervised pre-training; stores the trained model on the
        session and returns the :class:`~repro.core.PretrainResult`."""
        from ..core.pretrain import run_pretrain

        opts = self._opts(options)
        result = run_pretrain(self.model_config, data,
                              train_config=opts.resolved_pretrain_config(),
                              run=opts.run, hooks=opts.hooks,
                              distributed=opts.distributed)
        self.model = result.model
        self.last_result = result
        return result

    def finetune(self, data, task: str | None = None,
                 options: TrainOptions | None = None):
        """Fine-tune the session's model (encoder + fresh task head).

        ``task`` is ``"forecasting"`` or ``"classification"``; omitted,
        it is inferred from the data type.  Without a prior ``pretrain``
        (or ``from_checkpoint``) a freshly initialised model is used —
        the paper's supervised baseline.
        """
        from ..core.finetune import (
            run_finetune_classification,
            run_finetune_forecasting,
        )

        opts = self._opts(options)
        task = task or _infer_task(data)
        if task not in ("forecasting", "classification"):
            raise ValueError("task must be 'forecasting' or "
                             f"'classification', got {task!r}")
        if self.model is None:
            self.model = TimeDRL(self.model_config)
        runner, default_epochs = (
            (run_finetune_forecasting, 5) if task == "forecasting"
            else (run_finetune_classification, 10))
        result = runner(
            self.model, data,
            label_fraction=opts.label_fraction,
            epochs=opts.epochs if opts.epochs is not None else default_epochs,
            batch_size=(opts.batch_size
                        if opts.batch_size is not None else 32),
            lr=(opts.learning_rate
                if opts.learning_rate is not None else 1e-3),
            encoder_lr_scale=opts.encoder_lr_scale,
            seed=opts.seed,
            prefetch=bool(opts.prefetch),
            run=opts.run,
            runtime=opts.resolved_runtime())
        self.last_result = result
        return result

    def transfer(self, source, target, options: TrainOptions | None = None):
        """Pre-train on ``source`` data, probe frozen on ``target``
        (:func:`repro.core.run_transfer`)."""
        from ..core.transfer import run_transfer

        opts = self._opts(options)
        result = run_transfer(source, target, self.model_config,
                              train_config=opts.resolved_pretrain_config(),
                              alpha=opts.alpha, run=opts.run,
                              distributed=opts.distributed)
        self.last_result = result
        return result

    def distill(self, windows, student=None,
                options: TrainOptions | None = None):
        """Distill the session's model into a narrower/shallower student
        (:func:`repro.compile.run_distillation`).

        ``windows`` is a raw ``(N, T, C)`` batch; ``student`` is a
        :class:`~repro.compile.DistillConfig`, a dict of its fields, or
        ``None`` for the defaults.  Session/per-call ``options`` supply
        epochs, batch size, learning rate, and seed when set.
        """
        from ..compile.distill import DistillConfig, run_distillation

        if self.model is None:
            raise ValueError(
                "distill requires a pretrained model; call pretrain() or "
                "open the session with from_checkpoint()")
        opts = self._opts(options)
        if student is None:
            config = DistillConfig()
        elif isinstance(student, dict):
            config = DistillConfig(**student)
        else:
            config = student
        overrides = {}
        if opts.epochs is not None:
            overrides["epochs"] = opts.epochs
        if opts.batch_size is not None:
            overrides["batch_size"] = opts.batch_size
        if opts.learning_rate is not None:
            overrides["learning_rate"] = opts.learning_rate
        if opts.seed:
            overrides["seed"] = opts.seed
        if overrides:
            config = dataclasses.replace(config, **overrides)
        result = run_distillation(self.model, windows, config=config)
        self.last_result = result
        return result


def _infer_task(data) -> str:
    from ..data.datasets import ClassificationData, ForecastingData

    if isinstance(data, ForecastingData):
        return "forecasting"
    if isinstance(data, ClassificationData):
        return "classification"
    raise ValueError(
        "cannot infer the fine-tuning task from "
        f"{type(data).__name__}; pass task='forecasting' or "
        "task='classification'")
