"""``repro.train`` — the unified training driver API (PR 9).

:class:`TrainSession` + :class:`TrainOptions` replace the sprawl of
per-driver kwargs; the module-level convenience functions below are thin
session wrappers for one-shot calls.  The OLD free functions
(``repro.core.pretrain`` and friends) are deprecated shims that delegate
here — see ``docs/training.md`` for the migration table.
"""

from __future__ import annotations

from .session import TrainOptions, TrainSession

__all__ = [
    "TrainOptions",
    "TrainSession",
    "pretrain",
    "fine_tune_forecasting",
    "fine_tune_classification",
    "transfer_forecasting",
]


def pretrain(model_config, data, options: TrainOptions | None = None):
    """One-shot pre-training through a throwaway :class:`TrainSession`."""
    return TrainSession(model_config, options=options).pretrain(data)


def fine_tune_forecasting(model, data, options: TrainOptions | None = None):
    """One-shot forecasting fine-tune of an existing model."""
    session = TrainSession(model.config, options=options, model=model)
    return session.finetune(data, task="forecasting")


def fine_tune_classification(model, data, options: TrainOptions | None = None):
    """One-shot classification fine-tune of an existing model."""
    session = TrainSession(model.config, options=options, model=model)
    return session.finetune(data, task="classification")


def transfer_forecasting(model_config, source, target,
                         options: TrainOptions | None = None):
    """One-shot transfer evaluation (pre-train on source, probe target)."""
    return TrainSession(model_config, options=options).transfer(source, target)
