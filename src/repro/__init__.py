"""TimeDRL reproduction (ICDE 2024) on a from-scratch NumPy substrate.

Public entry points::

    from repro.core import TimeDRL, TimeDRLConfig, pretrain
    from repro.data import load_forecasting_dataset, load_classification_dataset
    from repro.evaluation import evaluate_forecasting, evaluate_classification
"""

__version__ = "1.0.0"
