"""Dataset registry: named access to every benchmark dataset with the
paper's metadata (Tables I and II) attached.

``load_forecasting_dataset`` / ``load_classification_dataset`` accept a
``scale`` argument so tests and CPU benchmarks can run on shorter series
while keeping every statistical property of the full-size generators.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from . import synthetic

__all__ = [
    "ForecastingDatasetInfo",
    "ClassificationDatasetInfo",
    "FORECASTING_DATASETS",
    "CLASSIFICATION_DATASETS",
    "load_forecasting_dataset",
    "load_classification_dataset",
]


@dataclass(frozen=True)
class ForecastingDatasetInfo:
    """Metadata row of the paper's Table I."""

    name: str
    features: int
    timesteps: int
    frequency: str
    univariate_target: int  # column index used for univariate forecasting
    generator: Callable[..., np.ndarray]


@dataclass(frozen=True)
class ClassificationDatasetInfo:
    """Metadata row of the paper's Table II."""

    name: str
    samples: int
    features: int
    classes: int
    length: int
    generator: Callable[..., tuple[np.ndarray, np.ndarray]]


FORECASTING_DATASETS: dict[str, ForecastingDatasetInfo] = {
    "ETTh1": ForecastingDatasetInfo(
        "ETTh1", features=7, timesteps=17_420, frequency="1 hour",
        univariate_target=-1,
        generator=lambda length, seed: synthetic.generate_ett(
            length, steps_per_day=24, seed=seed, variant=1),
    ),
    "ETTh2": ForecastingDatasetInfo(
        "ETTh2", features=7, timesteps=17_420, frequency="1 hour",
        univariate_target=-1,
        generator=lambda length, seed: synthetic.generate_ett(
            length, steps_per_day=24, seed=seed, variant=2),
    ),
    "ETTm1": ForecastingDatasetInfo(
        "ETTm1", features=7, timesteps=69_680, frequency="5 min",
        univariate_target=-1,
        generator=lambda length, seed: synthetic.generate_ett(
            length, steps_per_day=96, seed=seed, variant=3),
    ),
    "ETTm2": ForecastingDatasetInfo(
        "ETTm2", features=7, timesteps=69_680, frequency="5 min",
        univariate_target=-1,
        generator=lambda length, seed: synthetic.generate_ett(
            length, steps_per_day=96, seed=seed, variant=4),
    ),
    "Exchange": ForecastingDatasetInfo(
        "Exchange", features=8, timesteps=7_588, frequency="1 day",
        univariate_target=-1,  # Singapore
        generator=lambda length, seed: synthetic.generate_exchange(length, seed=seed),
    ),
    "Weather": ForecastingDatasetInfo(
        "Weather", features=21, timesteps=52_696, frequency="10 min",
        univariate_target=-1,  # wet bulb
        generator=lambda length, seed: synthetic.generate_weather(length, seed=seed),
    ),
}


CLASSIFICATION_DATASETS: dict[str, ClassificationDatasetInfo] = {
    "FingerMovements": ClassificationDatasetInfo(
        "FingerMovements", samples=416, features=28, classes=2, length=50,
        generator=synthetic.generate_finger_movements,
    ),
    "PenDigits": ClassificationDatasetInfo(
        "PenDigits", samples=10_992, features=2, classes=10, length=8,
        generator=synthetic.generate_pendigits,
    ),
    "HAR": ClassificationDatasetInfo(
        "HAR", samples=10_299, features=9, classes=6, length=128,
        generator=synthetic.generate_har,
    ),
    "Epilepsy": ClassificationDatasetInfo(
        "Epilepsy", samples=11_500, features=1, classes=2, length=178,
        generator=synthetic.generate_epilepsy,
    ),
    "WISDM": ClassificationDatasetInfo(
        "WISDM", samples=4_091, features=3, classes=6, length=256,
        generator=synthetic.generate_wisdm,
    ),
}


def load_forecasting_dataset(name: str, scale: float = 1.0, seed: int = 0) -> np.ndarray:
    """Generate a forecasting dataset by name.

    Parameters
    ----------
    name:
        One of :data:`FORECASTING_DATASETS`.
    scale:
        Fraction of the paper's full length to generate (``scale=1.0``
        reproduces the Table I time-step counts exactly).
    """
    info = _lookup(FORECASTING_DATASETS, name)
    length = max(int(info.timesteps * scale), 64)
    data = info.generator(length, seed)
    if data.shape != (length, info.features):
        raise AssertionError(
            f"generator for {name} produced {data.shape}, expected ({length}, {info.features})"
        )
    return data


def load_classification_dataset(name: str, scale: float = 1.0, seed: int = 0
                                ) -> tuple[np.ndarray, np.ndarray]:
    """Generate a classification dataset by name; returns ``(x, y)`` with
    ``x`` shaped ``(samples, length, features)``."""
    info = _lookup(CLASSIFICATION_DATASETS, name)
    n_samples = max(int(info.samples * scale), 4 * info.classes)
    x, y = info.generator(n_samples, info.length, seed=seed)
    if x.shape != (n_samples, info.length, info.features):
        raise AssertionError(
            f"generator for {name} produced {x.shape}, "
            f"expected ({n_samples}, {info.length}, {info.features})"
        )
    return x, y


def _lookup(table: dict, name: str):
    if name not in table:
        raise KeyError(f"unknown dataset {name!r}; available: {sorted(table)}")
    return table[name]
