"""Minimal batch iterator (the substrate's DataLoader)."""

from __future__ import annotations

from typing import Iterator

import numpy as np

from .prefetch import prefetch as _prefetch

__all__ = ["batch_indices", "DataLoader"]


def batch_indices(n: int, batch_size: int, rng: np.random.Generator | None = None,
                  shuffle: bool = True, drop_last: bool = False) -> Iterator[np.ndarray]:
    """Yield index arrays covering ``range(n)`` in batches."""
    if batch_size < 1:
        raise ValueError("batch_size must be >= 1")
    order = np.arange(n)
    if shuffle:
        if rng is None:
            rng = np.random.default_rng()
        rng.shuffle(order)
    for start in range(0, n, batch_size):
        batch = order[start: start + batch_size]
        if drop_last and len(batch) < batch_size:
            return
        yield batch


class DataLoader:
    """Iterate ``(x, y)`` mini-batches over an indexable dataset.

    Works with :class:`~repro.data.datasets.ForecastingWindows` (via its
    ``batch`` method), with plain ``(x, y)`` array pairs, or with an
    unlabelled batch source exposing ``batch(indices) -> x`` such as
    :class:`~repro.data.store.ShardedDataset` (``y`` comes back ``None``).

    ``prefetch=True`` stages batches through a background
    :class:`~repro.data.prefetch.PrefetchLoader` so gather IO overlaps
    the consumer's compute; batch order and contents are unchanged.
    """

    def __init__(self, data, batch_size: int = 32, shuffle: bool = True,
                 seed: int = 0, drop_last: bool = False,
                 prefetch: bool = False, prefetch_depth: int = 2):
        self.data = data
        self.batch_size = batch_size
        self.shuffle = shuffle
        self.drop_last = drop_last
        self.prefetch = prefetch
        self.prefetch_depth = prefetch_depth
        self._rng = np.random.default_rng(seed)

    def __len__(self) -> int:
        n = self._size()
        if self.drop_last:
            return n // self.batch_size
        return (n + self.batch_size - 1) // self.batch_size

    def _size(self) -> int:
        if isinstance(self.data, tuple):
            return len(self.data[0])
        return len(self.data)

    def _fetch(self, indices: np.ndarray):
        if isinstance(self.data, tuple):
            x, y = self.data
            return x[indices], y[indices]
        batch = self.data.batch(indices)
        if isinstance(batch, tuple):
            return batch
        return batch, None

    def _generate(self):
        for indices in batch_indices(self._size(), self.batch_size, self._rng,
                                     shuffle=self.shuffle, drop_last=self.drop_last):
            yield self._fetch(indices)

    def __iter__(self) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        return iter(_prefetch(self._generate(), enabled=self.prefetch,
                              depth=self.prefetch_depth))
