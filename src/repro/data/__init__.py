"""``repro.data`` — dataset substrate.

Seeded synthetic stand-ins for the paper's 11 public benchmarks (no network
in this environment; see DESIGN.md for the substitution rationale), plus
windowing, splits, scaling and batch iteration — and the out-of-core
substrate: a chunked on-disk window store with a tiered corpus ladder
(:mod:`repro.data.store`) and a double-buffered prefetching loader
(:mod:`repro.data.prefetch`).  See docs/data.md.
"""

from .datasets import (
    ClassificationData,
    ForecastingData,
    ForecastingWindows,
    chronological_split,
    make_classification_data,
    make_forecasting_data,
    stratified_split,
)
from .io import (
    DataValidationError,
    load_classification_npz,
    load_forecasting_csv,
    save_classification_npz,
    save_forecasting_csv,
)
from .loader import DataLoader, batch_indices
from .prefetch import PrefetchLoader, prefetch
from .registry import (
    CLASSIFICATION_DATASETS,
    FORECASTING_DATASETS,
    ClassificationDatasetInfo,
    ForecastingDatasetInfo,
    load_classification_dataset,
    load_forecasting_dataset,
)
from .scaler import StandardScaler
from .specs import (
    classification_spec,
    forecasting_spec,
    iter_spec_windows,
    materialize_data_spec,
    store_spec,
    synthetic_windows_spec,
)
from .store import (
    DATA_LADDER,
    LadderTier,
    ShardedDataset,
    StoreManifest,
    build_ladder_tier,
    build_store,
    open_store,
    resolve_data_source,
    verify_store,
)

__all__ = [
    "ClassificationData", "ForecastingData", "ForecastingWindows",
    "chronological_split", "stratified_split",
    "make_classification_data", "make_forecasting_data",
    "DataLoader", "batch_indices",
    "DataValidationError",
    "load_forecasting_csv", "save_forecasting_csv",
    "load_classification_npz", "save_classification_npz",
    "StandardScaler",
    "FORECASTING_DATASETS", "CLASSIFICATION_DATASETS",
    "ForecastingDatasetInfo", "ClassificationDatasetInfo",
    "load_forecasting_dataset", "load_classification_dataset",
    "forecasting_spec", "classification_spec", "materialize_data_spec",
    "synthetic_windows_spec", "store_spec", "iter_spec_windows",
    "ShardedDataset", "StoreManifest", "build_store", "open_store",
    "verify_store", "resolve_data_source",
    "DATA_LADDER", "LadderTier", "build_ladder_tier",
    "PrefetchLoader", "prefetch",
]
