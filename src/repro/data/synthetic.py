"""Synthetic stand-ins for the paper's 11 public benchmark datasets.

The evaluation environment has no network access, so the real CSVs (ETT,
Exchange, Weather, HAR, WISDM, Epilepsy, PenDigits, FingerMovements) cannot
be downloaded.  Each generator below is a seeded simulator that preserves
the statistical character the corresponding dataset contributes to the
paper's experiments:

* **forecasting** sets keep the feature count, sampling-frequency-implied
  periodicities, cross-channel correlation and the stationarity class
  (mean-reverting seasonal signals for ETT/Weather, an integrated random
  walk for Exchange);
* **classification** sets keep sample count / channels / classes / length
  (paper Table II) and carry the class label in the *temporal dynamics*
  (per-class frequencies, AR coefficients, envelopes), which is exactly the
  information instance-level SSL embeddings must capture.  Class
  separability (SNR) is tuned so relative difficulty matches the paper:
  FingerMovements is hard (baselines ~50%), PenDigits/HAR/Epilepsy easy.

All generators are pure functions of ``(seed, size parameters)``.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "generate_ett",
    "generate_exchange",
    "generate_weather",
    "generate_har",
    "generate_wisdm",
    "generate_epilepsy",
    "generate_pendigits",
    "generate_finger_movements",
]


def _ar1(rng: np.random.Generator, length: int, phi: float = 0.9, sigma: float = 1.0,
         columns: int = 1) -> np.ndarray:
    """AR(1) noise, vectorised over ``columns``."""
    shocks = rng.standard_normal((length, columns)) * sigma
    out = np.zeros((length, columns))
    for t in range(1, length):
        out[t] = phi * out[t - 1] + shocks[t]
    return out


def _seasonal(length: int, period: float, amplitude: float = 1.0,
              phase: float = 0.0) -> np.ndarray:
    t = np.arange(length)
    return amplitude * np.sin(2 * np.pi * t / period + phase)


# ----------------------------------------------------------------------
# Forecasting datasets — return (timesteps, features) float32
# ----------------------------------------------------------------------
def generate_ett(length: int = 17_420, steps_per_day: int = 24, seed: int = 0,
                 variant: int = 1) -> np.ndarray:
    """Electricity-Transformer-Temperature-like series.

    7 features: 6 power-load channels plus the oil temperature (OT) as the
    last column, which lags a combination of the loads — the causal
    structure the real ETT data exhibits.  ``steps_per_day=24`` emulates the
    hourly ETTh sets; ``96`` the 15-minute ETTm sets.
    """
    rng = np.random.default_rng(seed + 1000 * variant)
    daily = steps_per_day
    weekly = steps_per_day * 7
    loads = np.zeros((length, 6))
    for channel in range(6):
        loads[:, channel] = (
            _seasonal(length, daily, amplitude=1.0 + 0.2 * channel,
                      phase=rng.uniform(0, 2 * np.pi))
            + _seasonal(length, weekly, amplitude=0.5, phase=rng.uniform(0, 2 * np.pi))
            + 0.3 * _ar1(rng, length, phi=0.95, sigma=0.3)[:, 0]
        )
    # Slow drift shared across channels (non-stationarity).
    drift = np.cumsum(rng.standard_normal(length)) * 0.01
    loads += drift[:, None] * rng.uniform(0.5, 1.5, size=6)[None, :]
    # Oil temperature: smoothed, lagged mixture of the loads.
    mixture = loads @ rng.uniform(0.1, 0.3, size=6)
    lag = steps_per_day // 4 or 1
    oil = np.empty(length)
    oil[:lag] = mixture[0]
    oil[lag:] = mixture[:-lag]
    kernel = np.ones(max(lag, 2)) / max(lag, 2)
    oil = np.convolve(oil, kernel, mode="same") + 0.2 * rng.standard_normal(length)
    return np.column_stack([loads, oil]).astype(np.float32)


def generate_exchange(length: int = 7_588, seed: int = 0) -> np.ndarray:
    """Daily-exchange-rate-like series: 8 correlated random walks.

    Exchange rates are near-integrated processes with no seasonality; the
    challenge for forecasting is extrapolating drifting levels.  The last
    column plays the role of Singapore (the paper's univariate target).
    """
    rng = np.random.default_rng(seed + 7)
    n_currencies = 8
    # Correlated innovations via a random loading matrix on 3 global factors.
    loadings = rng.uniform(0.2, 1.0, size=(n_currencies, 3))
    factors = rng.standard_normal((length, 3)) * 0.004
    idiosyncratic = rng.standard_normal((length, n_currencies)) * 0.002
    innovations = factors @ loadings.T + idiosyncratic
    levels = np.cumsum(innovations, axis=0) + rng.uniform(0.5, 2.0, size=n_currencies)
    return levels.astype(np.float32)


def generate_weather(length: int = 52_696, steps_per_day: int = 144,
                     seed: int = 0) -> np.ndarray:
    """Local-climatological-data-like series: 21 features, 10-minute rate.

    Strong daily cycle, slow annual trend, and smooth cross-correlated
    noise.  The last column is the 'wet bulb' target used for univariate
    forecasting in the paper.
    """
    rng = np.random.default_rng(seed + 21)
    n_features = 21
    annual = steps_per_day * 365.25
    data = np.zeros((length, n_features))
    shared_daily = _seasonal(length, steps_per_day, amplitude=1.0)
    shared_annual = _seasonal(length, annual, amplitude=2.0)
    smooth = _ar1(rng, length, phi=0.99, sigma=0.05, columns=4)
    for feature in range(n_features):
        weights = rng.uniform(-1, 1, size=4)
        data[:, feature] = (
            rng.uniform(0.3, 1.2) * shared_daily
            + rng.uniform(0.3, 1.0) * shared_annual
            + smooth @ weights
            + 0.1 * rng.standard_normal(length)
        )
    # Wet-bulb target: mixture of the first features (temperature/humidity).
    data[:, -1] = 0.5 * data[:, 0] + 0.3 * data[:, 1] + 0.2 * data[:, 2] \
        + 0.05 * rng.standard_normal(length)
    return data.astype(np.float32)


# ----------------------------------------------------------------------
# Classification datasets — return (samples, length, channels), labels
# ----------------------------------------------------------------------
def _activity_like(rng: np.random.Generator, n_samples: int, length: int,
                   n_channels: int, n_classes: int, snr: float) -> tuple[np.ndarray, np.ndarray]:
    """Shared recipe for accelerometer-style activity data.

    Each class owns a characteristic *waveform shape*: a base frequency,
    a per-channel phase pattern and a harmonic mix.  Because downstream
    pipelines (TimeDRL's Eq. 1 in particular) instance-normalise each
    sample, the class signal deliberately lives in shape rather than in
    offsets or amplitudes, which normalisation would erase.  Samples add
    mild frequency/phase jitter plus unit noise; ``snr`` scales the class
    signal against that noise.
    """
    labels = rng.integers(0, n_classes, size=n_samples)
    t = np.arange(length)
    class_freq = 2.0 + 3.0 * np.arange(n_classes)   # carrier cycles / window
    class_am_freq = 1.0 + np.arange(n_classes)      # envelope cycles / window
    class_am_depth = rng.uniform(0.5, 0.9, size=n_classes)
    class_phase = rng.uniform(0, 2 * np.pi, size=(n_classes, n_channels))
    class_am_phase = rng.uniform(0, 2 * np.pi, size=n_classes)
    class_harmonic = rng.uniform(0.2, 0.8, size=n_classes)
    class_amp = rng.uniform(0.8, 1.2, size=(n_classes, n_channels))
    class_offset = rng.uniform(-1.0, 1.0, size=(n_classes, n_channels))
    data = np.empty((n_samples, length, n_channels), dtype=np.float32)
    for index in range(n_samples):
        cls = labels[index]
        phase = class_phase[cls] + rng.normal(0, 0.45, size=n_channels)
        freq = class_freq[cls] * rng.uniform(0.95, 1.05)
        wave = np.sin(2 * np.pi * freq * t[:, None] / length + phase[None, :])
        harmonics = class_harmonic[cls] * np.sin(
            4 * np.pi * freq * t[:, None] / length + 2 * phase[None, :])
        # Class-specific amplitude modulation: activity data localises its
        # energy in class-dependent bursts (steps, swings).  Envelope-coded
        # structure survives any time pooling, unlike pure phase codes.
        envelope = 1.0 + class_am_depth[cls] * np.sin(
            2 * np.pi * class_am_freq[cls] * t / length
            + class_am_phase[cls] + rng.normal(0, 0.2))
        signal = (wave + harmonics) * envelope[:, None] * class_amp[cls][None, :] \
            + class_offset[cls][None, :]
        noise = rng.standard_normal((length, n_channels))
        data[index] = (snr * signal + noise).astype(np.float32)
    return data, labels.astype(np.int64)


def generate_har(n_samples: int = 10_299, length: int = 128, seed: int = 0
                 ) -> tuple[np.ndarray, np.ndarray]:
    """Human-Activity-Recognition-like data: 9 channels, 6 activities."""
    rng = np.random.default_rng(seed + 44)
    return _activity_like(rng, n_samples, length, n_channels=9, n_classes=6, snr=0.8)


def generate_wisdm(n_samples: int = 4_091, length: int = 256, seed: int = 0
                   ) -> tuple[np.ndarray, np.ndarray]:
    """WISDM-like smartphone accelerometer data: 3 channels, 6 activities."""
    rng = np.random.default_rng(seed + 4)
    return _activity_like(rng, n_samples, length, n_channels=3, n_classes=6, snr=0.6)


def generate_epilepsy(n_samples: int = 11_500, length: int = 178, seed: int = 0
                      ) -> tuple[np.ndarray, np.ndarray]:
    """Epileptic-EEG-like data: 1 channel, 2 classes.

    Seizure class: large-amplitude low-frequency spike-wave bursts;
    non-seizure: low-amplitude broadband activity.
    """
    rng = np.random.default_rng(seed + 45)
    labels = rng.integers(0, 2, size=n_samples)
    t = np.arange(length)
    data = np.empty((n_samples, length, 1), dtype=np.float32)
    for index in range(n_samples):
        background = np.convolve(
            rng.standard_normal(length), np.ones(5) / 5, mode="same"
        )
        if labels[index] == 1:  # seizure
            freq = rng.uniform(2.5, 4.0)
            burst = np.sin(2 * np.pi * freq * t / length * 8) ** 3
            envelope = 1.0 + np.abs(np.sin(2 * np.pi * t / length * rng.uniform(1, 3)))
            signal = 2.0 * burst * envelope + background
        else:
            signal = background + 0.3 * np.sin(
                2 * np.pi * rng.uniform(8, 14) * t / length
            )
        data[index, :, 0] = signal.astype(np.float32)
    return data, labels.astype(np.int64)


def generate_pendigits(n_samples: int = 10_992, length: int = 8, seed: int = 0
                       ) -> tuple[np.ndarray, np.ndarray]:
    """PenDigits-like data: (x, y) pen trajectories, 10 digit classes.

    Each digit is a parametric template curve resampled to 8 points; writer
    variation is an affine perturbation plus jitter.
    """
    rng = np.random.default_rng(seed + 46)
    labels = rng.integers(0, 10, size=n_samples)
    # Template trajectories: one closed/open curve per digit class.
    u = np.linspace(0, 1, length)
    templates = np.empty((10, length, 2))
    for digit in range(10):
        angle0 = 2 * np.pi * digit / 10
        turns = 1 + digit % 3
        radius = 0.5 + 0.05 * digit
        templates[digit, :, 0] = radius * np.cos(angle0 + 2 * np.pi * turns * u) \
            + 0.3 * u * ((digit % 4) - 1.5)
        templates[digit, :, 1] = radius * np.sin(angle0 + 2 * np.pi * turns * u) \
            + 0.3 * (1 - u) * ((digit % 5) - 2.0)
    data = np.empty((n_samples, length, 2), dtype=np.float32)
    for index in range(n_samples):
        template = templates[labels[index]]
        theta = rng.uniform(-0.15, 0.15)
        rotation = np.array([[np.cos(theta), -np.sin(theta)],
                             [np.sin(theta), np.cos(theta)]])
        scale = rng.uniform(0.9, 1.1)
        shift = rng.uniform(-0.1, 0.1, size=2)
        sample = scale * template @ rotation.T + shift
        sample += 0.03 * rng.standard_normal((length, 2))
        data[index] = sample.astype(np.float32)
    return data, labels.astype(np.int64)


def generate_finger_movements(n_samples: int = 416, length: int = 50, seed: int = 0
                              ) -> tuple[np.ndarray, np.ndarray]:
    """FingerMovements-like BCI data: 28 EEG channels, 2 classes (left/right).

    The class signal follows motor-imagery physiology: planning a left- vs
    right-hand key press suppresses the alpha rhythm over the
    *contralateral* hemisphere (event-related desynchronisation), so the
    class is carried by a weak left-vs-right contrast in alpha-band *power*
    plus a faint lateralised readiness ramp, both buried in strongly
    autocorrelated EEG background.  Deliberately low SNR: as in the paper,
    weak representations probe near chance on this dataset while good
    instance-level embeddings reach the low-to-mid 60s.
    """
    rng = np.random.default_rng(seed + 47)
    n_channels = 28
    labels = rng.integers(0, 2, size=n_samples)
    t = np.arange(length)
    # Hemisphere map: first half of the channels are "left" electrodes.
    left = np.zeros(n_channels, dtype=bool)
    left[: n_channels // 2] = True
    ramp = (t / length) ** 2  # readiness potential builds before the press
    data = np.empty((n_samples, length, n_channels), dtype=np.float32)
    for index in range(n_samples):
        background = _ar1(rng, length, phi=0.9, sigma=1.0, columns=n_channels)
        # Per-channel alpha oscillation with hemisphere-dependent amplitude:
        # the hemisphere contralateral to the pressed key is desynchronised.
        alpha_freq = rng.uniform(4.0, 6.0)  # cycles per window
        phases = rng.uniform(0, 2 * np.pi, size=n_channels)
        alpha = np.sin(2 * np.pi * alpha_freq * t[:, None] / length + phases[None, :])
        amplitude = np.where(left == (labels[index] == 1), 0.45, 1.05)
        sign = 1.0 if labels[index] == 1 else -1.0
        laterality = np.where(left, -1.0, 1.0)
        potential = 0.35 * sign * ramp[:, None] * laterality[None, :]
        data[index] = (background + alpha * amplitude[None, :] + potential
                       ).astype(np.float32)
    return data, labels.astype(np.int64)
