"""Feature scaling fit on training data only (no test-set leakage)."""

from __future__ import annotations

import numpy as np

__all__ = ["StandardScaler"]


class StandardScaler:
    """Per-feature standardisation over the last axis.

    Fit on the training split, then applied to validation/test — the
    standard leakage-free protocol for time-series benchmarks.
    """

    def __init__(self, eps: float = 1e-8):
        self.eps = eps
        self.mean_: np.ndarray | None = None
        self.std_: np.ndarray | None = None

    def fit(self, data: np.ndarray) -> "StandardScaler":
        """``data``: (..., features); statistics pool all leading axes."""
        flat = data.reshape(-1, data.shape[-1])
        self.mean_ = flat.mean(axis=0)
        self.std_ = flat.std(axis=0)
        return self

    def transform(self, data: np.ndarray) -> np.ndarray:
        self._check_fitted()
        return ((data - self.mean_) / (self.std_ + self.eps)).astype(np.float32)

    def fit_transform(self, data: np.ndarray) -> np.ndarray:
        return self.fit(data).transform(data)

    def inverse_transform(self, data: np.ndarray) -> np.ndarray:
        self._check_fitted()
        return data * (self.std_ + self.eps) + self.mean_

    def _check_fitted(self) -> None:
        if self.mean_ is None:
            raise RuntimeError("StandardScaler used before fit()")
