"""Double-buffered background prefetch for batch iterators.

A :class:`PrefetchLoader` wraps any batch iterator with a worker thread
that fills a bounded buffer: while the trainer runs the forward/backward
pass on batch *k*, the worker is already gathering batch *k+1* from the
memory-mapped shards — so epoch time approaches ``max(io, compute)``
instead of ``io + compute``.

Guarantees (locked by ``tests/data/test_prefetch.py``):

* **Determinism** — the buffer is a FIFO; batches come out in exactly
  the source iterator's order, so seeded shuffling is untouched and a
  prefetched epoch is bit-identical to an unprefetched one.
* **Exception transparency** — an exception in the source (a truncated
  shard raising ``DataValidationError``, say) is re-raised in the
  consumer at the ``next()`` where the batch would have appeared.
* **Clean shutdown** — :meth:`close` (idempotent, also triggered by
  exhaustion, consumer errors and ``with``-exit) unblocks and joins the
  worker; no threads are leaked even when the consumer abandons the
  epoch halfway.
"""

from __future__ import annotations

import queue
import threading
import time
from typing import Iterable, Iterator

from ..obs.metrics import enabled as _obs_enabled
from ..obs.metrics import get_registry as _obs_registry

__all__ = ["PrefetchLoader", "prefetch"]

THREAD_NAME = "repro-prefetch"
_POLL_S = 0.05


class PrefetchLoader:
    """Iterate ``source`` with a background worker ``depth`` batches ahead.

    ``depth=2`` is classic double buffering: one batch in the consumer's
    hands, one staged, the worker filling the next.  Larger depths only
    help when batch production time is bursty.
    """

    def __init__(self, source: Iterable, depth: int = 2,
                 name: str = THREAD_NAME):
        if depth < 1:
            raise ValueError("depth must be >= 1")
        self.depth = depth
        # Sampled once at construction: the per-batch hot path must not
        # pay a registry lookup when observability is off.
        self._obs = _obs_enabled()
        self._queue: queue.Queue = queue.Queue(maxsize=depth)
        self._stop = threading.Event()
        self._closed = False
        self._exhausted = False
        self._thread = threading.Thread(target=self._fill,
                                        args=(iter(source),),
                                        name=name, daemon=True)
        self._thread.start()

    # -- worker side ----------------------------------------------------
    def _fill(self, source: Iterator) -> None:
        try:
            try:
                for item in source:
                    if not self._put(("item", item)):
                        return          # consumer closed us mid-epoch
                self._put(("end", None))
            except BaseException as error:  # noqa: BLE001 — relayed, not swallowed
                self._put(("error", error))
        finally:
            close = getattr(source, "close", None)
            if close is not None:       # release a generator's frame promptly
                close()

    def _put(self, payload) -> bool:
        """Enqueue without deadlocking against a vanished consumer."""
        while not self._stop.is_set():
            try:
                self._queue.put(payload, timeout=_POLL_S)
                return True
            except queue.Full:
                continue
        return False

    # -- consumer side --------------------------------------------------
    def __iter__(self) -> "PrefetchLoader":
        return self

    def __next__(self):
        if self._exhausted:
            raise StopIteration
        if self._closed:
            raise RuntimeError("PrefetchLoader is closed")
        if self._obs:
            # Time the get(): how long the trainer stalled waiting for
            # the worker (0 means the buffer kept up).
            waited = time.perf_counter()
            kind, payload = self._queue.get()
            registry = _obs_registry()
            registry.histogram(
                "prefetch_wait_ms",
                "Consumer stall waiting on the prefetch buffer").observe(
                (time.perf_counter() - waited) * 1e3)
            registry.gauge("prefetch_queue_depth",
                           "Batches staged in the prefetch buffer").set(
                self._queue.qsize())
            if kind == "item":
                registry.counter("prefetch_batches_total",
                                 "Batches served through prefetch").inc()
                return payload
        else:
            kind, payload = self._queue.get()
        if kind == "item":
            return payload
        self._exhausted = True
        self.close()
        if kind == "error":
            raise payload
        raise StopIteration

    def close(self) -> None:
        """Stop the worker and join it.  Safe to call any number of times."""
        if self._closed:
            return
        self._closed = True
        self._stop.set()
        while True:                     # unblock a worker stuck on put()
            try:
                self._queue.get_nowait()
            except queue.Empty:
                break
        self._thread.join(timeout=10.0)

    @property
    def closed(self) -> bool:
        return self._closed

    def __del__(self):  # last-resort cleanup for abandoned loaders
        try:
            self.close()
        except Exception:  # noqa: BLE001 — interpreter may be tearing down
            pass

    def __enter__(self) -> "PrefetchLoader":
        return self

    def __exit__(self, *exc_info) -> bool:
        self.close()
        return False


def prefetch(source: Iterable, enabled: bool = True, depth: int = 2):
    """Wrap ``source`` in a :class:`PrefetchLoader` when ``enabled``.

    The disabled path returns ``source`` unchanged — zero threads, zero
    overhead — so drivers can hang the decision off one config flag.
    """
    if not enabled:
        return source
    return PrefetchLoader(source, depth=depth)
