"""Dataset file I/O: plug real benchmark CSVs into the same pipelines.

The reproduction environment has no network access, so the library ships
synthetic stand-ins — but the code is written for the real datasets too.
When a user has the actual files (ETTh1.csv from the Informer release, the
UEA/UCR classification archives, …), these loaders feed them into exactly
the same windowing/split/probe machinery:

* :func:`load_forecasting_csv` — Informer-convention CSV (a ``date``
  column followed by feature columns) to a ``(T, C)`` float array;
* :func:`save_forecasting_csv` — inverse, for exporting synthetic data;
* :func:`load_classification_npz` / :func:`save_classification_npz` —
  ``(x, y)`` sample archives in NumPy's portable ``.npz`` format.

Both loaders *validate on read* by default: corrupted inputs (NaN rows,
non-numeric dtypes, truncated archives) raise a typed
:class:`DataValidationError` naming the file and offending column, instead
of silently poisoning an hours-long pretrain downstream.  Pass
``validate=False`` to opt out (e.g. for datasets with legitimate NaNs that
a later imputation step handles).  File opens go through
:func:`repro.utils.fileio.read_with_retry`, so one transient filesystem
hiccup does not kill a run.
"""

from __future__ import annotations

import csv
import pathlib
import zipfile

import numpy as np

from ..utils.fileio import read_with_retry

__all__ = [
    "DataValidationError",
    "load_forecasting_csv",
    "save_forecasting_csv",
    "load_classification_npz",
    "save_classification_npz",
]


class DataValidationError(ValueError):
    """A dataset file failed validation on read.

    Carries the offending ``path`` and, when known, the ``column`` and
    ``line``, so callers (and error messages) point at the exact
    corruption.  Renders as ``path[:line]: message [(column 'name')]``.
    """

    def __init__(self, path, message: str, column: str | None = None,
                 line: int | None = None):
        self.path = pathlib.Path(path)
        self.column = column
        self.line = line
        where = str(self.path) if line is None else f"{self.path}:{line}"
        suffix = "" if column is None else f" (column {column!r})"
        super().__init__(f"{where}: {message}{suffix}")


def _validate_series(path, series: np.ndarray, names: list[str]) -> None:
    """Reject non-finite values, naming the first offending column."""
    finite = np.isfinite(series)
    if finite.all():
        return
    bad_rows, bad_cols = np.nonzero(~finite)
    column = names[int(bad_cols[0])]
    count = int((~finite).sum())
    kind = "NaN" if np.isnan(series[bad_rows[0], bad_cols[0]]) else "inf"
    raise DataValidationError(
        path, f"{count} non-finite value(s), first is {kind} at data row "
        f"{int(bad_rows[0])} (pass validate=False to accept)", column=column)


def load_forecasting_csv(path, date_column: str = "date",
                         validate: bool = True) -> tuple[np.ndarray, list[str]]:
    """Read an Informer-style CSV into ``(series (T, C), feature_names)``.

    The date column (if present) is dropped; every other column must parse
    as float.  Rows with any unparsable or missing cell raise a
    :class:`DataValidationError` naming the offender — silent coercion of
    real benchmark data would poison results.  With ``validate=True`` (the
    default) non-finite values are rejected too.
    """
    path = pathlib.Path(path)

    def _read(p):
        with p.open(newline="") as handle:
            return list(csv.reader(handle))

    lines = read_with_retry(_read, path)
    if not lines:
        raise DataValidationError(path, "file is empty")
    header, data_lines = lines[0], lines[1:]
    keep = [i for i, name in enumerate(header) if name != date_column]
    if not keep:
        raise DataValidationError(path, "no feature columns")
    names = [header[i] for i in keep]
    rows = []
    for line_number, row in enumerate(data_lines, start=2):
        if len(row) < len(header):
            raise DataValidationError(
                path, f"truncated row ({len(row)} of {len(header)} cells) "
                "— file cut short?", line=line_number)
        try:
            rows.append([float(row[i]) for i in keep])
        except ValueError as error:
            bad = next(names[j] for j, i in enumerate(keep)
                       if not _parses_as_float(row[i]))
            raise DataValidationError(path, f"unparsable row ({error})",
                                      column=bad, line=line_number) from None
    if not rows:
        raise DataValidationError(path, "has a header but no data rows")
    series = np.asarray(rows, dtype=np.float32)
    if validate:
        _validate_series(path, series, names)
    return series, names


def _parses_as_float(cell: str) -> bool:
    try:
        float(cell)
        return True
    except ValueError:
        return False


def save_forecasting_csv(path, series: np.ndarray,
                         feature_names: list[str] | None = None,
                         date_column: str = "date") -> None:
    """Write ``(T, C)`` data in the Informer CSV convention (synthetic
    index timestamps)."""
    series = np.asarray(series)
    if series.ndim != 2:
        raise ValueError("series must be (timesteps, features)")
    names = feature_names or [f"f{i}" for i in range(series.shape[1])]
    if len(names) != series.shape[1]:
        raise ValueError("feature_names length mismatch")
    path = pathlib.Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow([date_column] + names)
        for index, row in enumerate(series):
            writer.writerow([index] + [f"{value:.6f}" for value in row])


def load_classification_npz(path, validate: bool = True
                            ) -> tuple[np.ndarray, np.ndarray]:
    """Read ``(x (N, T, C), y (N,))`` from an ``.npz`` archive.

    A truncated or otherwise corrupt archive raises
    :class:`DataValidationError` instead of an opaque zipfile traceback;
    with ``validate=True`` non-finite samples and non-numeric dtypes are
    rejected, naming the offending array.
    """
    path = pathlib.Path(path)

    def _read(p):
        with np.load(p) as archive:
            return {key: archive[key] for key in archive.files}

    try:
        arrays = read_with_retry(_read, path)
    except (zipfile.BadZipFile, EOFError, ValueError) as error:
        raise DataValidationError(
            path, f"corrupt or truncated archive ({error})") from None
    missing = {"x", "y"} - set(arrays)
    if missing:
        raise DataValidationError(path, f"missing arrays: {sorted(missing)}")
    x, y = arrays["x"], arrays["y"]
    if validate:
        if not np.issubdtype(x.dtype, np.number):
            raise DataValidationError(
                path, f"non-numeric dtype {x.dtype}", column="x")
        if not np.issubdtype(y.dtype, np.number):
            raise DataValidationError(
                path, f"non-numeric dtype {y.dtype}", column="y")
        if not np.isfinite(x.astype(np.float64, copy=False)).all():
            bad = int(np.nonzero(~np.isfinite(
                x.astype(np.float64, copy=False)))[0][0])
            raise DataValidationError(
                path, f"non-finite values, first in sample {bad} "
                "(pass validate=False to accept)", column="x")
    x = x.astype(np.float32)
    y = y.astype(np.int64)
    if x.ndim != 3:
        raise DataValidationError(
            path, f"x must be (samples, length, channels), got {x.shape}",
            column="x")
    if len(x) != len(y):
        raise DataValidationError(path, "x and y length mismatch")
    return x, y


def save_classification_npz(path, x: np.ndarray, y: np.ndarray) -> None:
    """Write a classification dataset as a portable ``.npz`` archive."""
    x, y = np.asarray(x), np.asarray(y)
    if x.ndim != 3 or len(x) != len(y):
        raise ValueError("expected x (N, T, C) and matching y (N,)")
    np.savez_compressed(path, x=x.astype(np.float32), y=y.astype(np.int64))
