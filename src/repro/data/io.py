"""Dataset file I/O: plug real benchmark CSVs into the same pipelines.

The reproduction environment has no network access, so the library ships
synthetic stand-ins — but the code is written for the real datasets too.
When a user has the actual files (ETTh1.csv from the Informer release, the
UEA/UCR classification archives, …), these loaders feed them into exactly
the same windowing/split/probe machinery:

* :func:`load_forecasting_csv` — Informer-convention CSV (a ``date``
  column followed by feature columns) to a ``(T, C)`` float array;
* :func:`save_forecasting_csv` — inverse, for exporting synthetic data;
* :func:`load_classification_npz` / :func:`save_classification_npz` —
  ``(x, y)`` sample archives in NumPy's portable ``.npz`` format.
"""

from __future__ import annotations

import csv
import pathlib

import numpy as np

__all__ = [
    "load_forecasting_csv",
    "save_forecasting_csv",
    "load_classification_npz",
    "save_classification_npz",
]


def load_forecasting_csv(path, date_column: str = "date") -> tuple[np.ndarray, list[str]]:
    """Read an Informer-style CSV into ``(series (T, C), feature_names)``.

    The date column (if present) is dropped; every other column must parse
    as float.  Rows with any unparsable cell raise, naming the offender —
    silent coercion of real benchmark data would poison results.
    """
    path = pathlib.Path(path)
    with path.open(newline="") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            raise ValueError(f"{path} is empty") from None
        keep = [i for i, name in enumerate(header) if name != date_column]
        if not keep:
            raise ValueError(f"{path} has no feature columns")
        names = [header[i] for i in keep]
        rows = []
        for line_number, row in enumerate(reader, start=2):
            try:
                rows.append([float(row[i]) for i in keep])
            except (ValueError, IndexError) as error:
                raise ValueError(
                    f"{path}:{line_number}: unparsable row ({error})") from None
    if not rows:
        raise ValueError(f"{path} has a header but no data rows")
    return np.asarray(rows, dtype=np.float32), names


def save_forecasting_csv(path, series: np.ndarray,
                         feature_names: list[str] | None = None,
                         date_column: str = "date") -> None:
    """Write ``(T, C)`` data in the Informer CSV convention (synthetic
    index timestamps)."""
    series = np.asarray(series)
    if series.ndim != 2:
        raise ValueError("series must be (timesteps, features)")
    names = feature_names or [f"f{i}" for i in range(series.shape[1])]
    if len(names) != series.shape[1]:
        raise ValueError("feature_names length mismatch")
    path = pathlib.Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow([date_column] + names)
        for index, row in enumerate(series):
            writer.writerow([index] + [f"{value:.6f}" for value in row])


def load_classification_npz(path) -> tuple[np.ndarray, np.ndarray]:
    """Read ``(x (N, T, C), y (N,))`` from an ``.npz`` archive."""
    with np.load(path) as archive:
        missing = {"x", "y"} - set(archive.files)
        if missing:
            raise ValueError(f"{path} missing arrays: {sorted(missing)}")
        x = archive["x"].astype(np.float32)
        y = archive["y"].astype(np.int64)
    if x.ndim != 3:
        raise ValueError(f"x must be (samples, length, channels), got {x.shape}")
    if len(x) != len(y):
        raise ValueError("x and y length mismatch")
    return x, y


def save_classification_npz(path, x: np.ndarray, y: np.ndarray) -> None:
    """Write a classification dataset as a portable ``.npz`` archive."""
    x, y = np.asarray(x), np.asarray(y)
    if x.ndim != 3 or len(x) != len(y):
        raise ValueError("expected x (N, T, C) and matching y (N,)")
    np.savez_compressed(path, x=x.astype(np.float32), y=y.astype(np.int64))
