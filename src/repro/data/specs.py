"""Serializable dataset specs for checkpoint-driven resume and store builds.

A *data spec* is a small JSON-safe dict describing how a pre-training
data argument was built.  Checkpoints carry the spec in their metadata
(``CheckpointConfig.data_spec``) so ``repro runs resume <run_id>`` can
reconstruct the exact training data — same registry dataset, same scale,
same seed, same windowing — without the original launch script.  On-disk
window stores (:mod:`repro.data.store`) embed the generating spec in
their manifest for the same reason: a store is always rebuildable, and a
checkpoint taken against a store round-trips back to it.

Spec kinds:

* ``forecasting`` / ``classification`` — a registry dataset's training
  split (the original PR 3 kinds);
* ``synthetic_windows`` — an unbounded stream of synthetic pre-training
  windows, generated in fixed canonical blocks so materialization is
  *chunk-invariant*: building a 10M-window corpus shard by shard is
  bit-identical to generating it in one array (the property the
  out-of-core equivalence suite locks);
* ``store`` — a pointer at an on-disk window store built from one of the
  above (``materialize_data_spec`` memory-maps it instead of generating).
"""

from __future__ import annotations

import math

import numpy as np

from .datasets import ForecastingWindows, make_classification_data, make_forecasting_data
from .registry import load_classification_dataset, load_forecasting_dataset

__all__ = [
    "GENERATION_BLOCK",
    "forecasting_spec",
    "classification_spec",
    "synthetic_windows_spec",
    "store_spec",
    "materialize_data_spec",
    "materialize_spec_rows",
    "iter_spec_windows",
    "spec_total_windows",
]

# Canonical generation granularity for synthetic_windows specs.  Window
# block ``j`` is a pure function of ``(seed, j)``, so any shard layout
# (and any reader chunk size) reassembles the identical stream.
GENERATION_BLOCK = 4096


def forecasting_spec(dataset: str, scale: float = 1.0, seed: int = 0,
                     seq_len: int = 64, pred_len: int = 24, stride: int = 1,
                     univariate_target: int | None = None) -> dict:
    """Spec for pre-training on a forecasting split's training windows."""
    return {"kind": "forecasting", "dataset": dataset, "scale": scale,
            "seed": seed, "seq_len": seq_len, "pred_len": pred_len,
            "stride": stride, "univariate_target": univariate_target}


def classification_spec(dataset: str, scale: float = 1.0,
                        seed: int = 0) -> dict:
    """Spec for pre-training on a classification split's training samples."""
    return {"kind": "classification", "dataset": dataset, "scale": scale,
            "seed": seed}


def synthetic_windows_spec(windows: int, seq_len: int = 64, channels: int = 7,
                           seed: int = 0) -> dict:
    """Spec for ``windows`` synthetic pre-training windows ``(T, C)``.

    Generation is block-seeded (see :data:`GENERATION_BLOCK`), so corpora
    of any size can be materialized incrementally — the ladder tiers of
    :mod:`repro.data.store` are exactly these specs at 10k → 10M windows.
    """
    if windows < 1:
        raise ValueError("windows must be >= 1")
    if seq_len < 1 or channels < 1:
        raise ValueError("seq_len and channels must be >= 1")
    return {"kind": "synthetic_windows", "windows": int(windows),
            "seq_len": int(seq_len), "channels": int(channels),
            "seed": int(seed)}


def store_spec(path, source_spec: dict | None = None,
               tier: str | None = None) -> dict:
    """Spec pointing at an on-disk window store directory.

    ``source_spec`` (the spec the store was built from) rides along so a
    resume on a machine where the store is gone can name what to rebuild.
    """
    spec = {"kind": "store", "path": str(path)}
    if source_spec is not None:
        spec["source_spec"] = dict(source_spec)
    if tier is not None:
        spec["tier"] = tier
    return spec


def _synthetic_block(spec: dict, block_index: int) -> np.ndarray:
    """Canonical block ``block_index`` of a synthetic_windows spec.

    A pure function of ``(seed, block_index)``: per-window sinusoids with
    random period/phase/amplitude per channel plus Gaussian noise — cheap
    to generate, non-degenerate for the encoder, and embarrassingly
    parallel across blocks.
    """
    total = spec["windows"]
    start = block_index * GENERATION_BLOCK
    rows = min(GENERATION_BLOCK, total - start)
    if rows <= 0:
        raise ValueError(f"block {block_index} out of range for {total} windows")
    seq_len, channels = spec["seq_len"], spec["channels"]
    rng = np.random.default_rng([spec["seed"], block_index])
    t = np.arange(seq_len, dtype=np.float64)[None, :, None]
    period = rng.uniform(4.0, 4.0 * seq_len, size=(rows, 1, channels))
    phase = rng.uniform(0.0, 2.0 * np.pi, size=(rows, 1, channels))
    amplitude = rng.uniform(0.5, 1.5, size=(rows, 1, channels))
    base = amplitude * np.sin(2.0 * np.pi * t / period + phase)
    noise = 0.3 * rng.standard_normal((rows, seq_len, channels))
    return np.ascontiguousarray(base + noise, dtype=np.float32)


def spec_total_windows(spec: dict) -> int | None:
    """Window count a spec will materialize, when cheaply known."""
    if spec.get("kind") == "synthetic_windows":
        return int(spec["windows"])
    return None


def _spec_window_array(data) -> np.ndarray:
    """Flatten a materialized data argument into an ``(N, T, C)`` array."""
    if isinstance(data, ForecastingWindows):
        x, __ = data.batch(np.arange(len(data)))
        return x
    return np.asarray(data)


def _spec_blocks(spec: dict):
    """Yield the spec's windows in canonical generation blocks."""
    kind = spec.get("kind")
    if kind == "synthetic_windows":
        blocks = math.ceil(spec["windows"] / GENERATION_BLOCK)
        for j in range(blocks):
            yield _synthetic_block(spec, j)
        return
    if kind == "store":
        # Re-chunking an existing store (e.g. copying it with a new shard
        # size) gathers lazily through the memory maps.
        from .store import open_store

        dataset = open_store(spec["path"])
        try:
            for start in range(0, len(dataset), GENERATION_BLOCK):
                stop = min(start + GENERATION_BLOCK, len(dataset))
                yield dataset.batch(np.arange(start, stop))
        finally:
            dataset.close()
        return
    windows = _spec_window_array(materialize_data_spec(spec))
    for start in range(0, len(windows), GENERATION_BLOCK):
        yield windows[start: start + GENERATION_BLOCK]


def iter_spec_windows(spec: dict, chunk_rows: int = GENERATION_BLOCK):
    """Yield the spec's windows as ``(rows, T, C)`` chunks of ``chunk_rows``.

    The stream is invariant to ``chunk_rows``: concatenating the chunks
    always reproduces the same array, bit for bit, regardless of how the
    consumer (a shard writer, a test) sizes its chunks.  The final chunk
    may be short.
    """
    if chunk_rows < 1:
        raise ValueError("chunk_rows must be >= 1")
    pending: list[np.ndarray] = []
    have = 0
    for block in _spec_blocks(spec):
        if len(block) == 0:
            continue
        pending.append(block)
        have += len(block)
        while have >= chunk_rows:
            taken, out = 0, []
            while taken < chunk_rows:
                head = pending[0]
                need = chunk_rows - taken
                if len(head) <= need:
                    out.append(head)
                    taken += len(head)
                    pending.pop(0)
                else:
                    out.append(head[:need])
                    pending[0] = head[need:]
                    taken += need
            have -= chunk_rows
            yield out[0] if len(out) == 1 else np.concatenate(out)
    if have:
        yield pending[0] if len(pending) == 1 else np.concatenate(pending)


def materialize_spec_rows(spec: dict, start: int, stop: int) -> np.ndarray:
    """Materialize rows ``[start, stop)`` of a ``synthetic_windows`` spec
    without generating the rest of the corpus.

    Because window block ``j`` is a pure function of ``(seed, j)``, only
    the canonical blocks overlapping the range are generated; the result
    is bit-identical to ``materialize_data_spec(spec)[start:stop]``.
    This is what lets a data-parallel worker own a shard of a 10M-window
    spec while touching only its own slice of the generation space.
    """
    if spec.get("kind") != "synthetic_windows":
        raise ValueError("materialize_spec_rows requires a synthetic_windows "
                         f"spec, got kind {spec.get('kind')!r}")
    total = int(spec["windows"])
    if not 0 <= start <= stop <= total:
        raise ValueError(f"rows [{start}, {stop}) out of range for "
                         f"{total} windows")
    if start == stop:
        return np.empty((0, spec["seq_len"], spec["channels"]),
                        dtype=np.float32)
    first = start // GENERATION_BLOCK
    last = (stop - 1) // GENERATION_BLOCK
    blocks = [_synthetic_block(spec, j) for j in range(first, last + 1)]
    window = blocks[0] if len(blocks) == 1 else np.concatenate(blocks)
    offset = first * GENERATION_BLOCK
    return window[start - offset: stop - offset]


def materialize_data_spec(spec: dict):
    """Rebuild the pre-training ``data`` argument a spec describes.

    Forecasting specs yield the train split's
    :class:`~repro.data.datasets.ForecastingWindows`; classification specs
    yield the raw training samples ``(N, T, C)``; synthetic_windows specs
    yield the full window array in memory (use a store for corpora that
    don't fit); store specs memory-map the on-disk store and yield a
    :class:`~repro.data.store.ShardedDataset`.
    """
    kind = spec.get("kind")
    if kind == "forecasting":
        series = load_forecasting_dataset(spec["dataset"],
                                          scale=spec.get("scale", 1.0),
                                          seed=spec.get("seed", 0))
        data = make_forecasting_data(series, spec["seq_len"], spec["pred_len"],
                                     stride=spec.get("stride", 1),
                                     univariate_target=spec.get("univariate_target"))
        return data.train
    if kind == "classification":
        x, y = load_classification_dataset(spec["dataset"],
                                           scale=spec.get("scale", 1.0),
                                           seed=spec.get("seed", 0))
        return make_classification_data(x, y, seed=spec.get("seed", 0)).x_train
    if kind == "synthetic_windows":
        blocks = math.ceil(spec["windows"] / GENERATION_BLOCK)
        if blocks == 1:
            return _synthetic_block(spec, 0)
        return np.concatenate([_synthetic_block(spec, j) for j in range(blocks)])
    if kind == "store":
        from .store import open_store

        return open_store(spec["path"])
    raise ValueError(f"unknown data_spec kind {kind!r} (expected 'forecasting', "
                     "'classification', 'synthetic_windows', or 'store')")
