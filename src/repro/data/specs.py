"""Serializable dataset specs for checkpoint-driven resume.

A *data spec* is a small JSON-safe dict describing how a pre-training
data argument was built from the dataset registry.  Checkpoints carry the
spec in their metadata (``CheckpointConfig.data_spec``) so
``repro runs resume <run_id>`` can reconstruct the exact training data —
same registry dataset, same scale, same seed, same windowing — without
the original launch script.
"""

from __future__ import annotations

from .datasets import make_classification_data, make_forecasting_data
from .registry import load_classification_dataset, load_forecasting_dataset

__all__ = ["forecasting_spec", "classification_spec", "materialize_data_spec"]


def forecasting_spec(dataset: str, scale: float = 1.0, seed: int = 0,
                     seq_len: int = 64, pred_len: int = 24, stride: int = 1,
                     univariate_target: int | None = None) -> dict:
    """Spec for pre-training on a forecasting split's training windows."""
    return {"kind": "forecasting", "dataset": dataset, "scale": scale,
            "seed": seed, "seq_len": seq_len, "pred_len": pred_len,
            "stride": stride, "univariate_target": univariate_target}


def classification_spec(dataset: str, scale: float = 1.0,
                        seed: int = 0) -> dict:
    """Spec for pre-training on a classification split's training samples."""
    return {"kind": "classification", "dataset": dataset, "scale": scale,
            "seed": seed}


def materialize_data_spec(spec: dict):
    """Rebuild the pre-training ``data`` argument a spec describes.

    Forecasting specs yield the train split's
    :class:`~repro.data.datasets.ForecastingWindows`; classification specs
    yield the raw training samples ``(N, T, C)``.
    """
    kind = spec.get("kind")
    if kind == "forecasting":
        series = load_forecasting_dataset(spec["dataset"],
                                          scale=spec.get("scale", 1.0),
                                          seed=spec.get("seed", 0))
        data = make_forecasting_data(series, spec["seq_len"], spec["pred_len"],
                                     stride=spec.get("stride", 1),
                                     univariate_target=spec.get("univariate_target"))
        return data.train
    if kind == "classification":
        x, y = load_classification_dataset(spec["dataset"],
                                           scale=spec.get("scale", 1.0),
                                           seed=spec.get("seed", 0))
        return make_classification_data(x, y, seed=spec.get("seed", 0)).x_train
    raise ValueError(f"unknown data_spec kind {kind!r} "
                     "(expected 'forecasting' or 'classification')")
