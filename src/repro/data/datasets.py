"""Dataset containers: sliding-window forecasting sets and classification
sets, with the paper's 60/20/20 chronological split protocol.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .scaler import StandardScaler

__all__ = [
    "ForecastingWindows",
    "ForecastingData",
    "ClassificationData",
    "make_forecasting_data",
    "make_classification_data",
    "chronological_split",
    "stratified_split",
]


def chronological_split(length: int, train: float = 0.6, val: float = 0.2
                        ) -> tuple[slice, slice, slice]:
    """60/20/20 split along time (paper Section V: 'We partition the dataset
    into three segments: 60% for training, 20% for validation, 20% for
    testing')."""
    if not 0 < train < 1 or not 0 <= val < 1 or train + val >= 1:
        raise ValueError("invalid split fractions")
    train_end = int(length * train)
    val_end = int(length * (train + val))
    return slice(0, train_end), slice(train_end, val_end), slice(val_end, length)


def stratified_split(labels: np.ndarray, train: float = 0.6, val: float = 0.2,
                     seed: int = 0) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-class shuffled 60/20/20 index split for classification sets."""
    rng = np.random.default_rng(seed)
    train_idx, val_idx, test_idx = [], [], []
    for cls in np.unique(labels):
        members = np.flatnonzero(labels == cls)
        rng.shuffle(members)
        n_train = max(int(len(members) * train), 1)
        n_val = max(int(len(members) * val), 1)
        train_idx.append(members[:n_train])
        val_idx.append(members[n_train:n_train + n_val])
        test_idx.append(members[n_train + n_val:])
    return (np.concatenate(train_idx), np.concatenate(val_idx),
            np.concatenate(test_idx))


class ForecastingWindows:
    """Sliding (input, horizon) windows over a scaled series.

    Windows are materialised lazily by index to keep memory flat on long
    series.
    """

    def __init__(self, series: np.ndarray, seq_len: int, pred_len: int, stride: int = 1):
        if series.ndim != 2:
            raise ValueError("series must be (timesteps, features)")
        if seq_len < 1 or pred_len < 0 or stride < 1:
            raise ValueError("seq_len >= 1, pred_len >= 0, stride >= 1 required")
        total = seq_len + pred_len
        if len(series) < total:
            raise ValueError(
                f"series of length {len(series)} too short for seq_len+pred_len={total}"
            )
        self.series = series
        self.seq_len = seq_len
        self.pred_len = pred_len
        self.stride = stride
        self._starts = np.arange(0, len(series) - total + 1, stride)

    def __len__(self) -> int:
        return len(self._starts)

    def __getitem__(self, index: int) -> tuple[np.ndarray, np.ndarray]:
        start = self._starts[index]
        x = self.series[start: start + self.seq_len]
        y = self.series[start + self.seq_len: start + self.seq_len + self.pred_len]
        return x, y

    def batch(self, indices: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Gather a batch of windows: ``x (B, L, C)``, ``y (B, H, C)``."""
        xs = np.stack([self.series[s: s + self.seq_len] for s in self._starts[indices]])
        ys = np.stack([
            self.series[s + self.seq_len: s + self.seq_len + self.pred_len]
            for s in self._starts[indices]
        ])
        return xs, ys


@dataclass
class ForecastingData:
    """A forecasting benchmark instance: scaled splits plus window views."""

    train: ForecastingWindows
    val: ForecastingWindows
    test: ForecastingWindows
    scaler: StandardScaler
    seq_len: int
    pred_len: int
    n_features: int


def make_forecasting_data(series: np.ndarray, seq_len: int, pred_len: int,
                          stride: int = 1, univariate_target: int | None = None
                          ) -> ForecastingData:
    """Split chronologically, scale on train only, and build window views.

    ``univariate_target`` selects a single column (the paper's univariate
    protocol keeps only the target feature).
    """
    if univariate_target is not None:
        series = series[:, [univariate_target]]
    train_slice, val_slice, test_slice = chronological_split(len(series))
    scaler = StandardScaler().fit(series[train_slice])
    scaled = scaler.transform(series)
    return ForecastingData(
        train=ForecastingWindows(scaled[train_slice], seq_len, pred_len, stride),
        val=ForecastingWindows(scaled[val_slice], seq_len, pred_len, stride),
        test=ForecastingWindows(scaled[test_slice], seq_len, pred_len, stride),
        scaler=scaler,
        seq_len=seq_len,
        pred_len=pred_len,
        n_features=series.shape[-1],
    )


@dataclass
class ClassificationData:
    """A classification benchmark instance with stratified splits."""

    x_train: np.ndarray
    y_train: np.ndarray
    x_val: np.ndarray
    y_val: np.ndarray
    x_test: np.ndarray
    y_test: np.ndarray
    n_classes: int

    @property
    def length(self) -> int:
        return self.x_train.shape[1]

    @property
    def n_features(self) -> int:
        return self.x_train.shape[2]


def make_classification_data(x: np.ndarray, y: np.ndarray, seed: int = 0
                             ) -> ClassificationData:
    """Stratified 60/20/20 split; features scaled with train statistics."""
    if x.ndim != 3:
        raise ValueError("x must be (samples, length, features)")
    if len(x) != len(y):
        raise ValueError("x and y length mismatch")
    train_idx, val_idx, test_idx = stratified_split(y, seed=seed)
    scaler = StandardScaler().fit(x[train_idx])
    return ClassificationData(
        x_train=scaler.transform(x[train_idx]), y_train=y[train_idx],
        x_val=scaler.transform(x[val_idx]), y_val=y[val_idx],
        x_test=scaler.transform(x[test_idx]), y_test=y[test_idx],
        n_classes=int(np.unique(y).size),
    )
