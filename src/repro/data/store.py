"""Chunked on-disk window store: memory-mapped ``.npy`` shards + manifest.

The store is the out-of-core substrate for "millions of users"-scale
pre-training corpora.  A store directory holds::

    <root>/
      manifest.json          # schema, shard table, checksums, generating spec
      shard-00000.npy        # (rows, T, C) windows, plain NumPy format
      shard-00001.npy
      ...

Design contract (locked by ``tests/data/test_store.py`` and
``tests/data/test_ooc_equivalence.py``):

* **Bit-identity** — ``open_store(build_store(spec, root)).batch(idx)``
  equals ``materialize_data_spec(spec)[idx]`` exactly, for any shard
  size.  Spec generation is chunk-invariant (see
  :func:`repro.data.specs.iter_spec_windows`), so training out-of-core
  is bit-identical to training in-memory.
* **Validate on read** — a truncated shard, a checksum mismatch, or a
  manifest that disagrees with the shards on disk raises a typed
  :class:`~repro.data.io.DataValidationError` naming the offending file
  instead of yielding garbage windows into an hours-long pretrain.
* **Crash safety** — shards land via write-temp-then-rename and the
  manifest is written last, atomically; an interrupted build leaves a
  directory that ``open_store`` refuses cleanly.

The *ladder* (:data:`DATA_LADDER`) is a tiered family of synthetic
corpora, 10k → 10M windows with a fixed schema per tier, built by the
``repro data build`` CLI — the stable large-scale workload every perf PR
quotes (``benchmarks/test_perf_data.py`` → ``BENCH_data.json``).
"""

from __future__ import annotations

import hashlib
import json
import math
import os
import pathlib
from dataclasses import dataclass, field

import numpy as np

from ..utils.fileio import atomic_write_text, read_with_retry
from .io import DataValidationError
from .specs import iter_spec_windows, store_spec, synthetic_windows_spec

__all__ = [
    "STORE_FORMAT", "STORE_VERSION", "MANIFEST_NAME",
    "ShardInfo", "StoreManifest", "ShardedDataset",
    "build_store", "open_store", "verify_store", "resolve_data_source",
    "LadderTier", "DATA_LADDER", "ladder_tier_spec", "build_ladder_tier",
]

STORE_FORMAT = "repro-window-store"
STORE_VERSION = 1
MANIFEST_NAME = "manifest.json"
DEFAULT_SHARD_ROWS = 4096
_HASH_CHUNK = 1 << 20


@dataclass(frozen=True)
class ShardInfo:
    """One shard's manifest row."""

    file: str
    rows: int
    sha256: str


@dataclass(frozen=True)
class StoreManifest:
    """Schema + shard table of one store directory."""

    dtype: str
    window_shape: tuple[int, ...]   # (T, C)
    total_windows: int
    shard_rows: int                 # nominal rows per shard (last may be short)
    shards: tuple[ShardInfo, ...]
    spec: dict = field(default_factory=dict)
    tier: str | None = None

    def to_dict(self) -> dict:
        return {
            "format": STORE_FORMAT,
            "version": STORE_VERSION,
            "dtype": self.dtype,
            "window_shape": list(self.window_shape),
            "total_windows": self.total_windows,
            "shard_rows": self.shard_rows,
            "shards": [{"file": s.file, "rows": s.rows, "sha256": s.sha256}
                       for s in self.shards],
            "spec": self.spec,
            "tier": self.tier,
        }

    @classmethod
    def from_dict(cls, payload: dict, path) -> "StoreManifest":
        if payload.get("format") != STORE_FORMAT:
            raise DataValidationError(
                path, f"not a {STORE_FORMAT} manifest "
                f"(format={payload.get('format')!r})")
        if payload.get("version") != STORE_VERSION:
            raise DataValidationError(
                path, f"unsupported store version {payload.get('version')!r} "
                f"(this build reads version {STORE_VERSION})")
        try:
            shards = tuple(ShardInfo(file=str(s["file"]), rows=int(s["rows"]),
                                     sha256=str(s["sha256"]))
                           for s in payload["shards"])
            manifest = cls(dtype=str(payload["dtype"]),
                           window_shape=tuple(int(d) for d in payload["window_shape"]),
                           total_windows=int(payload["total_windows"]),
                           shard_rows=int(payload["shard_rows"]),
                           shards=shards,
                           spec=dict(payload.get("spec") or {}),
                           tier=payload.get("tier"))
        except (KeyError, TypeError, ValueError) as error:
            raise DataValidationError(
                path, f"malformed manifest ({error!r})") from None
        if sum(s.rows for s in manifest.shards) != manifest.total_windows:
            raise DataValidationError(
                path, "stale manifest: shard rows "
                f"{sum(s.rows for s in manifest.shards)} != total_windows "
                f"{manifest.total_windows}")
        return manifest


def _file_sha256(path: pathlib.Path) -> str:
    digest = hashlib.sha256()
    with path.open("rb") as handle:
        for chunk in iter(lambda: handle.read(_HASH_CHUNK), b""):
            digest.update(chunk)
    return digest.hexdigest()


def _shard_name(index: int) -> str:
    return f"shard-{index:05d}.npy"


def build_store(spec: dict, root, *, shard_rows: int = DEFAULT_SHARD_ROWS,
                tier: str | None = None, force: bool = False) -> pathlib.Path:
    """Materialize ``spec`` as a sharded store under ``root``.

    Windows stream through :func:`iter_spec_windows` at ``shard_rows``
    granularity, so building a corpus much larger than RAM holds only one
    shard in memory at a time.  Rebuilding an existing store is a no-op
    when the manifest carries the same spec and shard size; a conflicting
    existing store raises unless ``force=True``.
    """
    if shard_rows < 1:
        raise ValueError("shard_rows must be >= 1")
    root = pathlib.Path(root)
    manifest_path = root / MANIFEST_NAME
    if manifest_path.is_file():
        existing = _read_manifest(manifest_path)
        if (existing.spec == spec and existing.shard_rows == shard_rows
                and not force):
            return root
        if not force:
            raise DataValidationError(
                manifest_path, "store already exists with a different "
                "spec/shard size (pass force=True to rebuild)")
        manifest_path.unlink()
    root.mkdir(parents=True, exist_ok=True)
    for stale in root.glob("shard-*.npy"):
        stale.unlink()

    shards: list[ShardInfo] = []
    dtype = window_shape = None
    total = 0
    for index, chunk in enumerate(iter_spec_windows(spec, shard_rows)):
        if chunk.ndim != 3:
            raise ValueError(f"spec yielded {chunk.ndim}d chunk; "
                             "windows must be (rows, T, C)")
        if dtype is None:
            dtype, window_shape = chunk.dtype, chunk.shape[1:]
        elif chunk.dtype != dtype or chunk.shape[1:] != window_shape:
            raise ValueError("spec yielded inconsistent chunk schema")
        path = root / _shard_name(index)
        temp = path.with_name(f".{path.name}.tmp{os.getpid()}")
        try:
            with temp.open("wb") as handle:  # np.save(path) would append .npy
                np.save(handle, np.ascontiguousarray(chunk))
            os.replace(temp, path)
        finally:
            temp.unlink(missing_ok=True)
        shards.append(ShardInfo(file=path.name, rows=len(chunk),
                                sha256=_file_sha256(path)))
        total += len(chunk)
    if not shards:
        raise ValueError("spec yielded no windows")
    manifest = StoreManifest(dtype=str(dtype),
                             window_shape=tuple(int(d) for d in window_shape),
                             total_windows=total, shard_rows=shard_rows,
                             shards=tuple(shards), spec=dict(spec), tier=tier)
    atomic_write_text(manifest_path,
                      json.dumps(manifest.to_dict(), indent=2, sort_keys=True) + "\n")
    return root


def _read_manifest(manifest_path: pathlib.Path) -> StoreManifest:
    def _read(p):
        return json.loads(p.read_text(encoding="utf-8"))

    if not manifest_path.is_file():
        raise DataValidationError(
            manifest_path, "no store manifest here (is this a store "
            "directory built by `repro data build`?)")
    try:
        payload = read_with_retry(_read, manifest_path)
    except json.JSONDecodeError as error:
        raise DataValidationError(
            manifest_path, f"corrupt manifest ({error})") from None
    if not isinstance(payload, dict):
        raise DataValidationError(manifest_path, "manifest is not an object")
    return StoreManifest.from_dict(payload, manifest_path)


class ShardedDataset:
    """Memory-mapped random access over a store's windows.

    Opening validates every shard against the manifest (shape, dtype and
    file size; ``verify='full'`` re-hashes the bytes too).  The maps are
    OS-paged, so opening a 10M-window store costs only header reads;
    :meth:`batch` gathers arbitrary global indices across shards into a
    fresh contiguous array, bit-identical to indexing the in-memory
    equivalent.  Plugs into :func:`repro.core.pretrain` exactly like an
    ndarray of samples.
    """

    def __init__(self, root, manifest: StoreManifest, *, verify: str = "shallow"):
        self.root = pathlib.Path(root)
        self.manifest = manifest
        self._maps: list[np.ndarray] | None = []
        starts = np.cumsum([0] + [s.rows for s in manifest.shards])
        self._starts = starts[:-1]          # first global row of each shard
        expected_dtype = np.dtype(manifest.dtype)
        for info in manifest.shards:
            path = self.root / info.file
            if not path.is_file():
                raise DataValidationError(path, "shard listed in manifest is missing")
            try:
                mapped = np.load(path, mmap_mode="r")
            except (ValueError, OSError, EOFError) as error:
                raise DataValidationError(
                    path, f"truncated or corrupt shard ({error})") from None
            expected_shape = (info.rows, *manifest.window_shape)
            if mapped.shape != expected_shape or mapped.dtype != expected_dtype:
                raise DataValidationError(
                    path, f"stale manifest: shard holds {mapped.dtype} "
                    f"{mapped.shape}, manifest says {expected_dtype} "
                    f"{expected_shape}")
            if verify == "full" and _file_sha256(path) != info.sha256:
                raise DataValidationError(
                    path, "checksum mismatch: shard bytes do not match the "
                    "manifest sha256 (corrupted after build?)")
            self._maps.append(mapped)

    # -- container protocol ---------------------------------------------
    def __len__(self) -> int:
        return self.manifest.total_windows

    @property
    def window_shape(self) -> tuple[int, ...]:
        return self.manifest.window_shape

    @property
    def dtype(self) -> np.dtype:
        return np.dtype(self.manifest.dtype)

    @property
    def nbytes(self) -> int:
        return len(self) * int(np.prod(self.window_shape)) * self.dtype.itemsize

    @property
    def closed(self) -> bool:
        return self._maps is None

    def __getitem__(self, index: int) -> np.ndarray:
        return self.batch(np.asarray([index]))[0]

    def batch(self, indices) -> np.ndarray:
        """Gather windows at global ``indices`` into a ``(B, T, C)`` array.

        Bit-identical to ``all_windows[indices]`` on the in-memory
        materialization of the same spec, in any order, with duplicates.
        """
        if self._maps is None:
            raise RuntimeError("store is closed")
        indices = np.asarray(indices, dtype=np.int64)
        if indices.size and (indices.min() < 0 or indices.max() >= len(self)):
            raise IndexError(f"window index out of range [0, {len(self)})")
        out = np.empty((len(indices), *self.window_shape), dtype=self.dtype)
        shard_ids = np.searchsorted(self._starts, indices, side="right") - 1
        for shard in np.unique(shard_ids):
            mask = shard_ids == shard
            out[mask] = self._maps[shard][indices[mask] - self._starts[shard]]
        return out

    # -- lifecycle ------------------------------------------------------
    def close(self) -> None:
        """Drop the memory maps.  Idempotent; gathers afterwards raise."""
        self._maps = None

    def __enter__(self) -> "ShardedDataset":
        return self

    def __exit__(self, *exc_info) -> bool:
        self.close()
        return False

    def __repr__(self) -> str:
        return (f"ShardedDataset({str(self.root)!r}, windows={len(self)}, "
                f"shape={self.window_shape}, dtype={self.manifest.dtype}, "
                f"shards={len(self.manifest.shards)})")

    # -- integration hooks ----------------------------------------------
    def dataset_fingerprint(self) -> dict:
        """Cheap identity for telemetry manifests: hashes the shard
        checksums instead of re-reading gigabytes of windows."""
        digest = hashlib.sha256()
        digest.update(self.manifest.dtype.encode())
        digest.update(str((len(self), *self.window_shape)).encode())
        for info in self.manifest.shards:
            digest.update(info.sha256.encode())
        return {"shape": [len(self), *self.window_shape],
                "dtype": self.manifest.dtype,
                "sha256": digest.hexdigest()[:16],
                "container": type(self).__name__,
                "store": str(self.root)}

    def store_spec(self) -> dict:
        """The ``kind='store'`` data spec for checkpoints taken against
        this store — ``repro runs resume`` reopens it from this."""
        return store_spec(self.root, source_spec=self.manifest.spec or None,
                          tier=self.manifest.tier)


def open_store(root, *, verify: str = "shallow") -> ShardedDataset:
    """Open a store directory for reading.

    ``verify`` levels: ``'none'`` trusts the manifest blindly (shards are
    still shape-checked on map), ``'shallow'`` (default) validates every
    shard's header and size against the manifest, ``'full'`` additionally
    re-hashes every shard — the paranoid pre-flight for a multi-day run.
    """
    if verify not in ("none", "shallow", "full"):
        raise ValueError("verify must be 'none', 'shallow', or 'full'")
    root = pathlib.Path(root)
    manifest = _read_manifest(root / MANIFEST_NAME)
    return ShardedDataset(root, manifest, verify=verify)


def verify_store(root) -> StoreManifest:
    """Full-checksum validation pass; returns the manifest on success."""
    dataset = open_store(root, verify="full")
    manifest = dataset.manifest
    dataset.close()
    return manifest


def resolve_data_source(data):
    """Coerce a driver ``data`` argument: store paths open as datasets.

    Strings/paths pointing at a store directory (or its manifest file)
    become a :class:`ShardedDataset`; everything else passes through so
    existing in-memory call sites are untouched.
    """
    if isinstance(data, (str, pathlib.Path)):
        path = pathlib.Path(data)
        if path.name == MANIFEST_NAME:
            path = path.parent
        return open_store(path)
    return data


# ----------------------------------------------------------------------
# The corpus ladder: tiered synthetic corpora, 10k -> 10M windows
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class LadderTier:
    """One rung: a fixed window count and shard layout."""

    name: str
    windows: int
    shard_rows: int


DATA_LADDER: dict[str, LadderTier] = {
    "smallest": LadderTier("smallest", windows=10_000, shard_rows=2_500),
    "small": LadderTier("small", windows=100_000, shard_rows=12_500),
    "mid": LadderTier("mid", windows=1_000_000, shard_rows=62_500),
    "large": LadderTier("large", windows=10_000_000, shard_rows=250_000),
}


def ladder_tier_spec(tier: str | LadderTier, *, seq_len: int = 64,
                     channels: int = 7, seed: int = 0,
                     scale: float = 1.0) -> tuple[dict, int]:
    """The ``(spec, shard_rows)`` a ladder tier builds from.

    ``scale`` shrinks the window count (CI and smoke benchmarks build
    1/100-size rungs with the identical schema and shard count).
    """
    if isinstance(tier, str):
        if tier not in DATA_LADDER:
            raise KeyError(f"unknown ladder tier {tier!r}; "
                           f"available: {sorted(DATA_LADDER)}")
        tier = DATA_LADDER[tier]
    if scale <= 0:
        raise ValueError("scale must be positive")
    windows = max(int(tier.windows * scale), 64)
    # Preserve the tier's shard *count* under scaling so small builds
    # still exercise multi-shard gathers.
    shard_rows = max(min(tier.shard_rows, math.ceil(windows / 4)), 1)
    spec = synthetic_windows_spec(windows, seq_len=seq_len, channels=channels,
                                  seed=seed)
    return spec, shard_rows


def build_ladder_tier(root, tier: str | LadderTier, *, seq_len: int = 64,
                      channels: int = 7, seed: int = 0, scale: float = 1.0,
                      force: bool = False) -> pathlib.Path:
    """Build one ladder rung under ``<root>/<tier>/`` and return its path."""
    if isinstance(tier, str):
        spec, shard_rows = ladder_tier_spec(tier, seq_len=seq_len,
                                            channels=channels, seed=seed,
                                            scale=scale)
        name = tier
    else:
        spec, shard_rows = ladder_tier_spec(tier, seq_len=seq_len,
                                            channels=channels, seed=seed,
                                            scale=scale)
        name = tier.name
    return build_store(spec, pathlib.Path(root) / name, shard_rows=shard_rows,
                       tier=name, force=force)
