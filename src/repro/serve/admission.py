"""Multi-tenant admission control: quotas, load shedding, fairness.

Three cooperating pieces, all synchronous and lock-protected so counts
stay exact under concurrent submitters:

* :class:`TokenBucket` — the per-tenant quota.  Buckets hold *windows*
  (the unit of serving work), refill continuously at ``rate`` windows/s
  up to ``burst``, and report how long a rejected caller should wait.
* :class:`AdmissionController` — the gateway's door.  A request is
  admitted only if its tenant's bucket can pay for it **and** the
  gateway-wide in-flight window budget has room; otherwise it is shed
  *at the door* with a typed, retryable error
  (:class:`~repro.serve.errors.QuotaExceeded` /
  :class:`~repro.serve.errors.Overloaded`) instead of joining a queue it
  would only time out in.  Shedding is what keeps accepted-request
  latency bounded under overload — the benchmark's no-gateway baseline
  shows the alternative.
* :class:`FairScheduler` — start-time fair queuing over tenants.  Each
  tenant carries a virtual finish tag advanced by ``windows / weight``
  per request; the dispatcher always serves the smallest tag, so a
  weight-3 tenant gets 3x the windows of a weight-1 tenant under
  contention while an idle tenant's first request is served immediately
  (its tag restarts at the current virtual time — no banked credit, no
  starvation).
"""

from __future__ import annotations

import math
import threading
import time
from dataclasses import dataclass, field

from .errors import Overloaded, QuotaExceeded

__all__ = ["TenantConfig", "TokenBucket", "AdmissionController",
           "FairScheduler", "DEFAULT_TENANT"]

DEFAULT_TENANT = "default"


@dataclass(frozen=True)
class TenantConfig:
    """One tenant's quota and fair-share weight.

    ``rate`` is the sustained budget in windows/second and ``burst`` the
    bucket capacity (how far a quiet tenant can briefly exceed its
    rate).  The defaults are unlimited — a single-tenant gateway behaves
    exactly like the bare engine.
    """

    name: str = DEFAULT_TENANT
    weight: float = 1.0
    rate: float = math.inf
    burst: float = math.inf

    def __post_init__(self):
        if self.weight <= 0:
            raise ValueError("weight must be > 0")
        if self.rate <= 0 or self.burst <= 0:
            raise ValueError("rate and burst must be > 0 "
                             "(use math.inf for unlimited)")


class TokenBucket:
    """Continuous-refill token bucket; tokens are windows of work."""

    def __init__(self, rate: float, burst: float,
                 clock=time.monotonic):
        self.rate = float(rate)
        self.burst = float(burst)
        self._clock = clock
        self._tokens = self.burst
        self._refilled = clock()
        self._lock = threading.Lock()

    def try_take(self, amount: float) -> float:
        """Take ``amount`` tokens; returns 0.0 on success, else the
        seconds until the bucket could cover the request (``inf`` when
        ``amount`` exceeds ``burst`` — that request can never pass)."""
        with self._lock:
            now = self._clock()
            if self.rate != math.inf:
                self._tokens = min(self.burst, self._tokens
                                   + (now - self._refilled) * self.rate)
            self._refilled = now
            if amount > self.burst:
                return math.inf
            if self._tokens >= amount:
                self._tokens -= amount
                return 0.0
            if self.rate == math.inf:  # burst-capped but instant refill
                return 0.0 if math.isinf(self.burst) else 1e-3
            return (amount - self._tokens) / self.rate

    def refund(self, amount: float) -> None:
        """Return tokens taken for a request that was later refused."""
        with self._lock:
            self._tokens = min(self.burst, self._tokens + amount)

    @property
    def tokens(self) -> float:
        with self._lock:
            return self._tokens


class AdmissionController:
    """Quota + bounded-queue admission for the gateway's front door.

    ``max_queue_windows`` bounds the windows admitted but not yet
    fulfilled across all tenants (gateway queues + engine queue): the
    knob that turns unbounded queueing delay into typed shedding.
    """

    def __init__(self, tenants=None, max_queue_windows: int = 1024,
                 clock=time.monotonic):
        if max_queue_windows < 1:
            raise ValueError("max_queue_windows must be >= 1")
        self.max_queue_windows = max_queue_windows
        self._clock = clock
        self._lock = threading.Lock()
        self._tenants: dict[str, TenantConfig] = {}
        self._buckets: dict[str, TokenBucket] = {}
        self._in_flight = 0
        self.admitted: dict[str, int] = {}
        self.shed: dict[str, int] = {}
        for tenant in tenants or (TenantConfig(),):
            self.add_tenant(tenant)

    def add_tenant(self, config: TenantConfig) -> None:
        with self._lock:
            self._tenants[config.name] = config
            self._buckets[config.name] = TokenBucket(
                config.rate, config.burst, clock=self._clock)
            self.admitted.setdefault(config.name, 0)
            self.shed.setdefault(config.name, 0)

    def tenant(self, name: str) -> TenantConfig:
        with self._lock:
            config = self._tenants.get(name)
        if config is None:
            raise KeyError(f"unknown tenant {name!r}; "
                           f"known: {sorted(self._tenants)}")
        return config

    @property
    def in_flight(self) -> int:
        with self._lock:
            return self._in_flight

    def admit(self, tenant: str, windows: int,
              retry_after_s: float = 0.05) -> TenantConfig:
        """Admit ``windows`` for ``tenant`` or raise a typed rejection.

        Quota is checked before the queue bound so a tenant over its own
        budget is reported as such even when the gateway is also busy.
        On success the tenant's bucket is debited and the in-flight
        budget reserved; the gateway must call :meth:`release` exactly
        once per admitted request when it resolves.
        """
        config = self.tenant(tenant)
        bucket = self._buckets[tenant]
        wait = bucket.try_take(windows)
        if wait > 0:
            with self._lock:
                self.shed[tenant] += 1
            raise QuotaExceeded(
                f"tenant {tenant!r} is over quota "
                f"(rate={config.rate}/s, burst={config.burst}); "
                f"retry in {min(wait, 60):.3f}s",
                retry_after_s=min(wait, 60.0))
        overloaded = None
        with self._lock:
            if self._in_flight + windows > self.max_queue_windows:
                self.shed[tenant] += 1
                overloaded = Overloaded(
                    f"gateway over capacity ({self._in_flight} windows in "
                    f"flight, budget {self.max_queue_windows}); retry in "
                    f"{retry_after_s:.3f}s", retry_after_s=retry_after_s)
            else:
                self._in_flight += windows
                self.admitted[tenant] += 1
        if overloaded is not None:
            # Quota was paid but the request is refused at the queue
            # bound: give the tokens back so shedding doesn't
            # double-charge the tenant.
            bucket.refund(windows)
            raise overloaded
        return config

    def release(self, windows: int) -> None:
        """Return ``windows`` to the in-flight budget (request resolved)."""
        with self._lock:
            self._in_flight = max(0, self._in_flight - windows)

    def counters(self) -> dict:
        with self._lock:
            return {"admitted": dict(self.admitted),
                    "shed": dict(self.shed),
                    "in_flight_windows": self._in_flight}


@dataclass(order=True)
class _Tagged:
    tag: float
    seq: int
    item: object = field(compare=False)


class FairScheduler:
    """Start-time fair queuing: per-tenant FIFOs drained by virtual tag.

    ``enqueue`` stamps a request with its tenant's virtual finish tag
    (monotone within a tenant, advanced by ``windows / weight``);
    ``pop`` returns the globally smallest-tagged request, ties broken by
    arrival order.  All state sits behind one lock — exactness under
    8-thread submitters is part of the contract (tests/serve).
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._queues: dict[str, list[_Tagged]] = {}
        self._tags: dict[str, float] = {}
        self._vtime = 0.0
        self._seq = 0
        self.dispatched: dict[str, int] = {}  # windows handed out, per tenant

    def enqueue(self, tenant: str, weight: float, windows: int,
                item) -> None:
        with self._lock:
            tag = max(self._vtime, self._tags.get(tenant, 0.0))
            self._tags[tenant] = tag + windows / weight
            self._seq += 1
            self._queues.setdefault(tenant, []).append(
                _Tagged(tag, self._seq, (tenant, windows, item)))

    def pop(self):
        """Next ``(tenant, windows, item)`` in fair order, or ``None``."""
        with self._lock:
            best_key = None
            for tenant, queue in self._queues.items():
                if queue and (best_key is None or queue[0] < self._queues[best_key][0]):
                    best_key = tenant
            if best_key is None:
                return None
            tagged = self._queues[best_key].pop(0)
            tenant, windows, item = tagged.item
            # Advance virtual time so a tenant that went idle re-enters
            # at "now" instead of with banked credit.
            self._vtime = max(self._vtime, tagged.tag)
            self.dispatched[tenant] = self.dispatched.get(tenant, 0) + windows
            return tagged.item

    def __len__(self) -> int:
        with self._lock:
            return sum(len(q) for q in self._queues.values())

    def drain(self) -> list:
        """Pop everything (close path); fair order preserved."""
        items = []
        while True:
            item = self.pop()
            if item is None:
                return items
            items.append(item)