"""Micro-batching engine: coalesce inference requests, answer from cache.

Requests (encode or predict, each carrying one or more raw windows) are
queued and coalesced into dynamic micro-batches: a batch closes when it
reaches ``max_batch_size`` windows or when the oldest queued request has
waited ``max_wait_ms`` — the classic throughput/latency dial.  Each
micro-batch runs exactly one forward pass under eval mode + ``no_grad``
on the fused-kernel fast path.

Two execution modes share the same batching core:

* **deferred** (default) — ``submit()`` enqueues, ``flush()`` drains.
  Single-threaded and deterministic; what the CLI batch mode and the
  benchmark use.  ``max_wait_ms`` is irrelevant here: the caller decides
  when to flush.
* **threaded** — ``start()`` launches a worker that drains the queue
  continuously, honouring the max-wait deadline for partially filled
  batches.  ``submit()`` then returns a handle whose ``result()`` blocks.

Per-window outputs are independent of batch composition on this
substrate (row-wise kernels; locked by ``tests/serve/test_equivalence``),
which is what makes transparent coalescing — and caching results
computed under one batch split for reuse under another — sound.

When an :class:`~repro.serve.EmbeddingCache` is wired, each request's
input digest is checked first; hits skip the forward pass entirely and
misses are inserted after computation, keyed by the model fingerprint.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

import numpy as np

from .. import nn
from ..obs import metrics as obs_metrics
from ..obs import trace as obs_trace
from ..obs.metrics import get_registry
from .cache import EmbeddingCache, input_digest
from .errors import DeadlineExceeded, EngineClosed
from .metrics import LatencyHistogram
from .registry import LoadedModel

__all__ = ["BatchingEngine", "BatchingConfig", "InferenceRequest"]

_KINDS = ("encode", "predict")


class _ObsHandles:
    """Metric children resolved once per registry generation.

    ``submit``/``_process`` run per request; re-resolving each family and
    labeled child through the registry on every call costs more than the
    increment itself.  Handles are memoized keyed on registry identity,
    so ``enable``/``disable``/``set_registry`` swaps rebuild them — and
    the null registry memoizes its shared null metric the same way.
    """

    __slots__ = ("registry", "requests", "request_ms", "queue_depth",
                 "batches", "windows", "batch_windows")

    def __init__(self, registry):
        self.registry = registry
        requests = registry.counter("serve_requests_total",
                                    "Requests submitted", labels=("kind",))
        request_ms = registry.histogram(
            "serve_request_ms", "Submit-to-fulfil request latency",
            labels=("kind",))
        # Unlabeled families are resolved down to their single child here:
        # a bare family .inc() re-derives the child per call.
        self.requests = {kind: requests.labels(kind=kind) for kind in _KINDS}
        self.request_ms = {kind: request_ms.labels(kind=kind)
                           for kind in _KINDS}
        self.queue_depth = registry.gauge(
            "serve_queue_depth", "Requests waiting in the engine queue").labels()
        self.batches = registry.counter("serve_batches_total",
                                        "Micro-batches executed").labels()
        self.windows = registry.counter("serve_windows_total",
                                        "Windows served").labels()
        self.batch_windows = registry.histogram(
            "serve_batch_windows", "Windows per micro-batch",
            buckets=(1, 2, 4, 8, 16, 32, 64, 128, 256, 512)).labels()


@dataclass
class BatchingConfig:
    """Engine knobs: batch geometry, deadline, cache wiring."""

    max_batch_size: int = 64
    max_wait_ms: float = 2.0
    use_fused: bool = True

    def __post_init__(self):
        if self.max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if self.max_wait_ms < 0:
            raise ValueError("max_wait_ms must be >= 0")


class InferenceRequest:
    """Handle for one submitted request; fulfilled by the engine.

    ``deadline_s`` (absolute ``time.perf_counter()`` time, optional) is
    the latest moment a forward pass may *start* on this request; the
    engine sweeps expired requests out of every batch it takes and fails
    them with :class:`DeadlineExceeded`.  ``on_done`` (optional) is
    invoked with the request once it resolves — result or error — on the
    fulfilling thread; the gateway uses it for breaker/fairness
    accounting and traffic mirroring.
    """

    def __init__(self, kind: str, x: np.ndarray, digest: str | None,
                 deadline_s: float | None = None, on_done=None):
        self.kind = kind
        self.x = x
        self.digest = digest
        self.deadline_s = deadline_s
        self.on_done = on_done
        self.trace: obs_trace.TraceContext | None = None
        self.submitted = time.perf_counter()
        self._done = threading.Event()
        self._value = None
        self._error: BaseException | None = None

    @property
    def windows(self) -> int:
        return self.x.shape[0]

    def done(self) -> bool:
        return self._done.is_set()

    def result(self, timeout: float | None = None):
        """Block until fulfilled; re-raises the engine-side error if any."""
        if not self._done.wait(timeout):
            raise TimeoutError("request not fulfilled within timeout")
        if self._error is not None:
            raise self._error
        return self._value

    def expired(self, now: float | None = None) -> bool:
        if self.deadline_s is None:
            return False
        return (now if now is not None else time.perf_counter()) >= self.deadline_s

    def _fulfil(self, value, error: BaseException | None = None) -> None:
        self._value = value
        self._error = error
        self._done.set()
        if self.on_done is not None:
            try:
                self.on_done(self)
            except Exception:
                # A misbehaving observer must not poison the rest of the
                # batch; the request itself already resolved above.
                pass


class BatchingEngine:
    """Coalesces encode/predict requests over one loaded model."""

    def __init__(self, loaded: LoadedModel,
                 config: BatchingConfig | None = None,
                 cache: EmbeddingCache | None = None):
        self.loaded = loaded
        self.config = config or BatchingConfig()
        self.cache = cache
        self.latency = {kind: LatencyHistogram(kind) for kind in _KINDS}
        self.batches_run = 0
        self.windows_served = 0
        self._queue: list[InferenceRequest] = []
        self._lock = threading.Lock()
        self._wakeup = threading.Condition(self._lock)
        # batches_run / windows_served are written by whichever thread runs
        # _process (worker or flusher) and read by report(); their own lock
        # keeps them exact without widening the queue lock.
        self._stats_lock = threading.Lock()
        self._worker: threading.Thread | None = None
        self._stopping = False
        self._closed = False
        # Benign race: submit (caller threads) and _process (worker) may
        # both rebuild after a registry swap; the registry hands back the
        # same families/children either way.
        self._obs: _ObsHandles | None = None

    def _obs_handles(self) -> _ObsHandles:
        handles = self._obs
        registry = get_registry()
        if handles is None or handles.registry is not registry:
            handles = _ObsHandles(registry)
            self._obs = handles
        return handles

    @property
    def closed(self) -> bool:
        return self._closed

    # -- submission -------------------------------------------------------
    def submit(self, x: np.ndarray, kind: str = "encode",
               deadline_s: float | None = None,
               on_done=None) -> InferenceRequest:
        """Enqueue one request of ``n >= 1`` windows ``(n, T, C)``.

        The input is validated against the model's data spec up front —
        a malformed request must fail fast at the door, not poison the
        micro-batch it would have been coalesced into.  A ``deadline_s``
        already in the past is likewise rejected synchronously.
        """
        if self._closed:
            raise EngineClosed("engine is closed; no new requests accepted")
        if kind not in _KINDS:
            raise ValueError(f"kind must be one of {_KINDS}, got {kind!r}")
        x = self.loaded.validate_input(x)
        if deadline_s is not None and time.perf_counter() >= deadline_s:
            raise DeadlineExceeded(
                "request deadline expired before submission", waited_ms=0.0)
        digest = input_digest(x) if self.cache is not None else None
        request = InferenceRequest(kind, x, digest, deadline_s=deadline_s,
                                   on_done=on_done)
        # The submit span's context rides on the request so the worker
        # thread can adopt it — one trace_id from caller to fulfilment.
        # record_span instead of span(): no nested span derives from the
        # enqueue region, so the context never needs to become current.
        tracing = obs_metrics.enabled()
        if tracing:
            ctx = request.trace = obs_trace.child_context()
            start = time.perf_counter()
        with self._wakeup:
            # Re-checked under the lock: a close() racing with this
            # submit must either refuse the request here or fail it in
            # its own final sweep — never leave the future unresolved.
            if self._closed:
                raise EngineClosed("engine is closed; no new requests accepted")
            self._queue.append(request)
            depth = len(self._queue)
            self._wakeup.notify()
        if tracing:
            obs_trace.record_span("engine.submit", ctx, start, kind=kind,
                                  windows=request.windows)
        handles = self._obs_handles()
        handles.requests[kind].inc()
        handles.queue_depth.set(depth)
        return request

    def encode(self, x: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Synchronous convenience: submit + flush + result."""
        request = self.submit(x, "encode")
        if self._worker is None:
            self.flush()
        return request.result()

    def predict(self, x: np.ndarray) -> np.ndarray:
        request = self.submit(x, "predict")
        if self._worker is None:
            self.flush()
        return request.result()

    # -- deferred draining ------------------------------------------------
    def flush(self) -> int:
        """Drain the queue in micro-batches; returns requests fulfilled.

        Expired requests resolve to :class:`DeadlineExceeded`; a batch
        whose processing crashes resolves to that error — either way
        every drained request is fulfilled.
        """
        fulfilled = 0
        while True:
            batch = self._take_batch(wait=False)
            if not batch:
                return fulfilled
            self._run_batch(batch)
            fulfilled += len(batch)

    # -- threaded draining ------------------------------------------------
    def start(self) -> "BatchingEngine":
        """Launch the background worker (idempotent)."""
        if self._closed:
            raise EngineClosed("engine is closed; cannot restart the worker")
        if self._worker is None:
            self._stopping = False
            self._worker = threading.Thread(target=self._worker_loop,
                                            name="serve-batcher", daemon=True)
            self._worker.start()
        return self

    def stop(self) -> None:
        """Drain remaining requests and join the worker (engine stays
        open: a stopped engine accepts submits and can ``start()`` again)."""
        worker = self._worker
        if worker is None:
            return
        with self._wakeup:
            self._stopping = True
            self._wakeup.notify_all()
        worker.join()
        self._worker = None
        self.flush()  # anything submitted after the worker observed stop

    def close(self, drain: bool = True) -> None:
        """Shut the engine down; every outstanding request resolves.

        With ``drain=True`` (default) queued requests are still served;
        with ``drain=False`` they fail with :class:`EngineClosed`.
        Either way no future is left unresolved, submissions after close
        raise :class:`EngineClosed`, and closing twice is a no-op.
        """
        with self._wakeup:
            self._closed = True  # refuses new submits from here on
            self._stopping = True
            self._wakeup.notify_all()
        worker = self._worker
        if worker is not None:
            worker.join()
            self._worker = None
        if drain:
            self.flush()
        with self._wakeup:
            leftovers = list(self._queue)
            self._queue.clear()
        if leftovers:
            error = EngineClosed("engine closed before the request ran")
            for request in leftovers:
                request._fulfil(None, error)
            get_registry().counter(
                "serve_rejected_total", "Requests failed without a forward "
                "pass", labels=("reason",)).labels(reason="closed").inc(
                    len(leftovers))

    def __enter__(self) -> "BatchingEngine":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()

    def stats(self) -> dict:
        """Consistent snapshot of the engine counters."""
        with self._stats_lock:
            return {"batches_run": self.batches_run,
                    "windows_served": self.windows_served}

    def _worker_loop(self) -> None:
        while True:
            batch = self._take_batch(wait=True)
            if batch is None:  # stop requested, queue empty
                return
            if batch:
                self._run_batch(batch)

    def _run_batch(self, batch: list[InferenceRequest]) -> None:
        """Run one micro-batch with a crash boundary around it.

        ``_process`` already scatters *forward-pass* failures to the
        batch's waiters; this boundary additionally catches crashes in
        the batching machinery itself (cache, metrics, scatter), so a
        worker-thread crash mid-batch fails only that batch's requests
        and the engine — worker included — stays serviceable.
        """
        try:
            self._process(batch)
        except BaseException as error:
            for request in batch:
                if not request.done():
                    request._fulfil(None, error)
            get_registry().counter(
                "serve_batch_failures_total",
                "Micro-batches that crashed outside the forward pass").inc()

    # -- batching core ----------------------------------------------------
    def _take_batch(self, wait: bool):
        """Pop the next micro-batch: same-kind prefix of the queue, up to
        ``max_batch_size`` windows.

        Requests whose deadline expired while queued are swept out first
        and failed with :class:`DeadlineExceeded` — a forward pass never
        starts on an answer nobody is waiting for.  In waiting mode,
        blocks until the batch is full, the oldest request exceeds the
        max-wait deadline, the nearest request deadline is due, or stop
        is requested (``None`` means: stopping and nothing left).
        """
        max_windows = self.config.max_batch_size
        deadline_s = self.config.max_wait_ms / 1e3
        expired: list[InferenceRequest] = []
        try:
            with self._wakeup:
                if wait:
                    while True:
                        self._sweep_expired_locked(expired)
                        if self._queue:
                            now = time.perf_counter()
                            oldest = self._queue[0].submitted
                            if (self._full_locked(max_windows)
                                    or now - oldest >= deadline_s
                                    or self._stopping):
                                break
                            remaining = deadline_s - (now - oldest)
                            nearest = min((r.deadline_s for r in self._queue
                                           if r.deadline_s is not None),
                                          default=None)
                            if nearest is not None:
                                remaining = min(remaining, nearest - now)
                            self._wakeup.wait(timeout=max(remaining, 1e-4))
                        elif self._stopping:
                            return None
                        else:
                            self._wakeup.wait()
                else:
                    self._sweep_expired_locked(expired)
                if not self._queue:
                    return []
                kind = self._queue[0].kind
                batch, windows = [], 0
                while (self._queue and self._queue[0].kind == kind
                       and (not batch
                            or windows + self._queue[0].windows <= max_windows)):
                    request = self._queue.pop(0)
                    windows += request.windows
                    batch.append(request)
                return batch
        finally:
            if expired:
                self._reject_expired(expired)

    def _sweep_expired_locked(self, expired: list[InferenceRequest]) -> None:
        now = time.perf_counter()
        if any(r.expired(now) for r in self._queue):
            keep = []
            for request in self._queue:
                (expired if request.expired(now) else keep).append(request)
            self._queue[:] = keep

    def _reject_expired(self, expired: list[InferenceRequest]) -> None:
        """Fulfil swept requests outside the queue lock (``on_done``
        observers may re-enter the engine)."""
        now = time.perf_counter()
        for request in expired:
            waited_ms = (now - request.submitted) * 1e3
            request._fulfil(None, DeadlineExceeded(
                f"deadline expired after {waited_ms:.1f}ms in queue, before "
                "a forward pass started", waited_ms=waited_ms))
        get_registry().counter(
            "serve_rejected_total", "Requests failed without a forward pass",
            labels=("reason",)).labels(reason="deadline").inc(len(expired))

    def _full_locked(self, max_windows: int) -> bool:
        kind = self._queue[0].kind
        windows = 0
        for request in self._queue:
            if request.kind != kind:
                return True  # a kind boundary closes the batch
            windows += request.windows
            if windows >= max_windows:
                return True
        return False

    def _process(self, batch: list[InferenceRequest]) -> None:
        """Run one coalesced micro-batch: cache lookups, a single forward
        pass for the misses, scatter, cache fill, latency accounting."""
        kind = batch[0].kind
        cached: dict[int, object] = {}
        misses: list[int] = []
        if self.cache is not None:
            for i, request in enumerate(batch):
                hit = self.cache.get(self.loaded.fingerprint, request.digest,
                                     kind)
                if hit is None:
                    misses.append(i)
                else:
                    cached[i] = hit
        else:
            misses = list(range(len(batch)))

        try:
            results = self._forward(kind, [batch[i].x for i in misses])
        except BaseException as error:  # scatter failure to every waiter
            for request in batch:
                request._fulfil(None, error)
            return

        for i, value in zip(misses, results):
            if self.cache is not None:
                value = self.cache.put(self.loaded.fingerprint,
                                       batch[i].digest, value, kind)
            cached[i] = value
        now = time.perf_counter()
        handles = self._obs_handles()
        request_ms = handles.request_ms[kind]
        batch_windows = 0
        for i, request in enumerate(batch):
            seconds = now - request.submitted
            self.latency[kind].record(seconds)
            request_ms.observe(seconds * 1e3)
            batch_windows += request.windows
            if request.trace is not None:
                # Child of the submit-side context, so the fulfil span
                # shares the request's trace_id on this (possibly
                # worker) thread — without contextvar traffic: nothing
                # inside _fulfil opens spans of its own.
                start = time.perf_counter()
                request._fulfil(cached[i])
                obs_trace.record_span("engine.process",
                                      request.trace.child(), start,
                                      kind=kind, windows=request.windows,
                                      cached=i not in misses)
            else:
                request._fulfil(cached[i])
        with self._stats_lock:
            self.windows_served += batch_windows
            self.batches_run += 1
        handles.batches.inc()
        handles.windows.inc(batch_windows)
        handles.batch_windows.observe(batch_windows)
        with self._lock:
            depth = len(self._queue)
        handles.queue_depth.set(depth)

    def _forward(self, kind: str, inputs: list[np.ndarray]) -> list:
        """One fused eval/no-grad pass over the concatenated misses,
        split back per request."""
        if not inputs:
            return []
        stacked = inputs[0] if len(inputs) == 1 else np.concatenate(inputs)
        with nn.use_fused(self.config.use_fused):
            if kind == "encode":
                timestamp, instance = self.loaded.model.encode(stacked)
                ci = self.loaded.config.channel_independence
                channels = self.loaded.config.input_channels if ci else 1
                results, ts_row, inst_row = [], 0, 0
                for x in inputs:
                    n = x.shape[0]
                    results.append((timestamp[ts_row:ts_row + n * channels],
                                    instance[inst_row:inst_row + n * channels]))
                    ts_row += n * channels
                    inst_row += n * channels
                return results
            prediction = self.loaded.model.predict(stacked)
            results, row = [], 0
            for x in inputs:
                results.append(prediction[row:row + x.shape[0]])
                row += x.shape[0]
            return results
