"""Model registry: from checkpoint archives to a warm, validated pool.

The registry is the serving subsystem's only door to disk.  It resolves
a *source* — a ``ckpt-*.npz`` file, a checkpoint directory, or a
telemetry run id — through :class:`~repro.checkpoint.CheckpointManager`
(so every load is checksum-verified), rebuilds the model from the
self-describing checkpoint meta (``model_config`` / ``data_spec``,
stored there by the training loop exactly for this hand-off), and keeps
the result warm in an in-process pool keyed by the caller's alias.

Every loaded model carries the checkpoint's ``content_sha256`` as its
*fingerprint* — the cache-key half that guarantees an
:class:`~repro.serve.EmbeddingCache` can never serve embeddings from a
different set of weights.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

import numpy as np

from ..checkpoint.manager import CheckpointError, resolve_checkpoint_source
from ..core.config import TimeDRLConfig
from ..core.model import TimeDRL
from ..obs import trace as obs_trace
from ..obs.metrics import get_registry

__all__ = ["ModelRegistry", "LoadedModel", "RegistryError", "ShapeMismatch"]


class RegistryError(RuntimeError):
    """A model could not be resolved, rebuilt, or validated."""


class ShapeMismatch(RegistryError):
    """Request input shape disagrees with the checkpoint's data spec."""


@dataclass
class LoadedModel:
    """One servable model plus the provenance the engine needs.

    ``model`` is anything speaking the :class:`~repro.serve.api.
    InferenceAPI` protocol with a ``config`` — a checkpoint-rebuilt
    :class:`TimeDRL` or a :class:`~repro.compile.CompiledModel`.
    """

    model: object
    fingerprint: str
    config: TimeDRLConfig
    meta: dict = field(default_factory=dict)
    source: str = ""

    @property
    def data_spec(self) -> dict | None:
        return self.meta.get("data_spec")

    def validate_input(self, x: np.ndarray) -> np.ndarray:
        """Check a request batch against the model's expected geometry.

        Validates ``(B, seq_len, input_channels)`` against the model
        config and, when the checkpoint carries a data spec, cross-checks
        the spec's ``seq_len`` too (a stale spec would mean the archive
        was trained on different windows than it claims).  Returns the
        array as contiguous float32, the dtype the substrate computes in.
        """
        x = np.asarray(x)
        if x.ndim != 3:
            raise ShapeMismatch(
                f"expected a (B, T, C) batch of raw windows, got shape {x.shape}")
        expected = (self.config.seq_len, self.config.input_channels)
        if x.shape[1:] != expected:
            raise ShapeMismatch(
                f"window shape {x.shape[1:]} does not match the checkpoint's "
                f"(seq_len, channels) = {expected} (source: {self.source})")
        spec = self.data_spec
        if spec and "seq_len" in spec and spec["seq_len"] != self.config.seq_len:
            raise ShapeMismatch(
                f"checkpoint data spec declares seq_len={spec['seq_len']} but "
                f"the model config says {self.config.seq_len}; refusing to "
                "serve an inconsistent archive")
        return np.ascontiguousarray(x, dtype=np.float32)


class ModelRegistry:
    """Warm pool of checkpoint-backed models, keyed by alias.

    ``get(alias)`` returns a previously loaded model without touching
    disk; ``load(source, alias=...)`` populates the pool.  A telemetry
    ``run`` (optional) receives one ``message`` event per load.
    """

    def __init__(self, run=None):
        self._pool: dict[str, LoadedModel] = {}
        # The gateway reads aliases from its dispatch path while a
        # rolling swap loads/promotes/unloads concurrently; every pool
        # access goes through this lock so a flip is atomic.
        self._lock = threading.Lock()
        self._run = run

    # -- pool ------------------------------------------------------------
    def __contains__(self, alias: str) -> bool:
        with self._lock:
            return alias in self._pool

    def __len__(self) -> int:
        with self._lock:
            return len(self._pool)

    def aliases(self) -> list[str]:
        with self._lock:
            return sorted(self._pool)

    def get(self, alias: str) -> LoadedModel:
        with self._lock:
            loaded = self._pool.get(alias)
        if loaded is None:
            raise RegistryError(
                f"no model loaded under alias {alias!r}; "
                f"known: {self.aliases() or 'none'}")
        return loaded

    def register(self, alias: str, model, fingerprint: str,
                 meta: dict | None = None, source: str = "<memory>"
                 ) -> LoadedModel:
        """Adopt an already-built model (tests, benchmarks, notebooks)."""
        model.eval()
        loaded = LoadedModel(model=model, fingerprint=fingerprint,
                             config=model.config, meta=meta or {},
                             source=source)
        with self._lock:
            self._pool[alias] = loaded
        return loaded

    def promote(self, alias: str, candidate: LoadedModel
                ) -> LoadedModel | None:
        """Atomically point ``alias`` at ``candidate``; returns the model
        previously behind the alias (``None`` if the alias is new).

        This is the flip at the end of a rolling swap: a reader sees
        either the old model or the new one, never an empty alias.
        """
        with self._lock:
            previous = self._pool.get(alias)
            self._pool[alias] = candidate
        if self._run is not None and getattr(self._run, "enabled", False):
            self._run.emit("message",
                           text=f"serve: alias {alias!r} now serves "
                                f"fingerprint={candidate.fingerprint[:12]}")
        return previous

    def unload(self, alias: str) -> LoadedModel | None:
        """Drop an alias from the warm pool (rollback of a candidate)."""
        with self._lock:
            return self._pool.pop(alias, None)

    # -- loading ---------------------------------------------------------
    def load(self, source, alias: str | None = None,
             run_root="results/runs") -> LoadedModel:
        """Resolve ``source`` and pull the model into the warm pool.

        ``source`` may be a checkpoint file (``ckpt-*.npz``), a checkpoint
        directory (the newest valid archive wins), a telemetry run id /
        run directory (its ``checkpoints/`` subdirectory is used), or a
        compiled artifact (``repro compile`` output) — the latter is
        checksum-verified and served through its packed fast path.
        """
        started = time.perf_counter()
        with obs_trace.span("registry.load", source=str(source)):
            # Local import: repro.compile is optional machinery the
            # plain checkpoint path never needs to pay for.
            from ..compile.artifact import is_compiled_artifact

            if is_compiled_artifact(source):
                loaded = self._build_compiled(source)
            else:
                try:
                    state, meta, path = resolve_checkpoint_source(
                        source, run_root=run_root)
                except CheckpointError as error:
                    raise RegistryError(str(error)) from error
                loaded = self._build(state, meta, str(path))
        with self._lock:
            self._pool[alias or str(source)] = loaded
        registry = get_registry()
        registry.counter("serve_model_loads_total",
                         "Models pulled into the warm pool").inc()
        registry.histogram("serve_model_load_ms",
                           "Checkpoint-to-warm-model load latency").observe(
            (time.perf_counter() - started) * 1e3)
        if self._run is not None and getattr(self._run, "enabled", False):
            self._run.emit("message",
                           text=f"serve: loaded {loaded.source} "
                                f"fingerprint={loaded.fingerprint[:12]}")
        return loaded

    def _build_compiled(self, source) -> LoadedModel:
        from ..compile.artifact import load_compiled
        from ..compile.errors import CompileError

        try:
            compiled = load_compiled(source)
        except CompileError as error:
            raise RegistryError(str(error)) from error
        get_registry().counter(
            "serve_compiled_loads_total",
            "Compiled artifacts pulled into the warm pool").inc()
        return LoadedModel(model=compiled, fingerprint=compiled.fingerprint,
                           config=compiled.config, meta=compiled.meta,
                           source=str(source))

    def _build(self, state, meta: dict, source: str) -> LoadedModel:
        model_config = meta.get("model_config")
        if not model_config:
            raise RegistryError(
                f"checkpoint {source} carries no model_config meta; only "
                "pre-training checkpoints are servable")
        try:
            config = TimeDRLConfig(**model_config)
        except (TypeError, ValueError) as error:
            raise RegistryError(
                f"checkpoint {source} has an invalid model_config: {error}"
            ) from error
        model = TimeDRL(config)
        model.load_state_dict(state.model_state, strict=True)
        model.eval()
        fingerprint = meta.get("content_sha256") or "unfingerprinted"
        return LoadedModel(model=model, fingerprint=fingerprint,
                           config=config, meta=meta, source=source)
