"""Zero-downtime rolling model swap: shadow-validate, then flip.

The swap protocol has three phases, none of which stops live traffic:

1. **Load** — the candidate checkpoint is resolved through the same
   :func:`repro.checkpoint.resolve_checkpoint_source` path as the active
   model (checksum-verified) and warmed in the registry under a staging
   alias.  A candidate with mismatched window geometry is rejected here,
   before any traffic is mirrored.
2. **Shadow** — the gateway mirrors fulfilled live requests to a
   :class:`ShadowValidator`, which replays each input through the
   candidate and scores a :class:`ShadowVerdict`: output difference
   (bit-compare by default; ``max_abs_diff`` admits a stated tolerance
   for quantized/distilled candidates) and forward latency against the
   budget.  Verdicts are emitted as telemetry events and obs counters.
   Mirroring happens *after* the live result is fulfilled — on a
   separate thread when the gateway is threaded — so shadowing adds no
   latency to the live path.
3. **Flip or roll back** — the first failing verdict rolls the candidate
   back immediately; ``shadow_requests`` passing verdicts promote it:
   the gateway builds a fresh engine on the candidate, atomically swaps
   it in (in-flight requests finish on the old engine, which is then
   drained and closed off-path), and the registry alias follows.
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass

import numpy as np

from .. import nn
from .errors import SwapFailed
from .registry import LoadedModel

__all__ = ["SwapConfig", "ShadowVerdict", "ShadowValidator", "SwapHandle",
           "SHADOW_THREAD_NAME"]

SHADOW_THREAD_NAME = "serve-shadow"


@dataclass(frozen=True)
class SwapConfig:
    """Shadow-validation policy for one rolling swap.

    ``max_abs_diff=0.0`` (default) demands bit-identical outputs — the
    right bar when the candidate is a later checkpoint of the same
    training run on this deterministic substrate is *not* expected, so
    set a tolerance deliberately; ``0.0`` is for same-weights/refactor
    swaps where any drift is a bug.  ``latency_budget_ms`` bounds the
    candidate's per-mirror forward time.
    """

    shadow_requests: int = 8
    latency_budget_ms: float = 250.0
    max_abs_diff: float = 0.0
    candidate_alias: str | None = None
    mirror_queue: int = 64   # threaded mirroring backlog before sampling

    def __post_init__(self):
        if self.shadow_requests < 1:
            raise ValueError("shadow_requests must be >= 1")
        if self.latency_budget_ms <= 0:
            raise ValueError("latency_budget_ms must be > 0")
        if self.max_abs_diff < 0:
            raise ValueError("max_abs_diff must be >= 0")


@dataclass(frozen=True)
class ShadowVerdict:
    """One mirrored request scored against the candidate."""

    index: int
    kind: str
    windows: int
    max_abs_diff: float
    bitwise_equal: bool
    latency_ms: float
    outputs_ok: bool
    within_budget: bool

    @property
    def passed(self) -> bool:
        return self.outputs_ok and self.within_budget

    def as_dict(self) -> dict:
        return {"index": self.index, "kind": self.kind,
                "windows": self.windows,
                "max_abs_diff": self.max_abs_diff,
                "bitwise_equal": self.bitwise_equal,
                "latency_ms": self.latency_ms,
                "outputs_ok": self.outputs_ok,
                "within_budget": self.within_budget,
                "passed": self.passed}


class ShadowValidator:
    """Replays mirrored traffic through the candidate and keeps score.

    ``observe`` is cheap for the caller: inline validation when
    ``threaded=False`` (deterministic tests, deferred gateways), or an
    enqueue onto a bounded mirror queue drained by a daemon worker when
    ``threaded=True`` — a full queue *samples* (drops the mirror) rather
    than back-pressuring the live path.  ``on_verdict(verdict)`` fires
    per mirror; ``on_complete(validator)`` fires exactly once, either at
    the first failing verdict (early rollback) or after
    ``shadow_requests`` passes.
    """

    def __init__(self, candidate: LoadedModel, config: SwapConfig,
                 use_fused: bool = True, threaded: bool = False,
                 on_verdict=None, on_complete=None):
        self.candidate = candidate
        self.config = config
        self.use_fused = use_fused
        self._on_verdict = on_verdict
        self._on_complete = on_complete
        self._lock = threading.Lock()
        self.verdicts: list[ShadowVerdict] = []
        self.dropped = 0
        self._complete = False
        self._stop = False
        self._queue: queue.Queue | None = None
        self._worker: threading.Thread | None = None
        if threaded:
            self._queue = queue.Queue(maxsize=config.mirror_queue)
            self._worker = threading.Thread(target=self._worker_loop,
                                            name=SHADOW_THREAD_NAME,
                                            daemon=True)
            self._worker.start()

    # -- results -----------------------------------------------------------
    @property
    def complete(self) -> bool:
        with self._lock:
            return self._complete

    @property
    def failed(self) -> bool:
        with self._lock:
            return any(not v.passed for v in self.verdicts)

    def summary(self) -> dict:
        with self._lock:
            verdicts = list(self.verdicts)
        latencies = [v.latency_ms for v in verdicts]
        return {"mirrored": len(verdicts),
                "required": self.config.shadow_requests,
                "passed": sum(1 for v in verdicts if v.passed),
                "failed": sum(1 for v in verdicts if not v.passed),
                "dropped_mirrors": self.dropped,
                "max_abs_diff": max((v.max_abs_diff for v in verdicts),
                                    default=0.0),
                "max_latency_ms": max(latencies, default=0.0),
                "verdicts": [v.as_dict() for v in verdicts]}

    # -- mirroring ---------------------------------------------------------
    def observe(self, x: np.ndarray, kind: str, live_result) -> None:
        """Mirror one fulfilled live request (input + live output)."""
        if self.complete:
            return
        if self._queue is None:
            self._validate(x, kind, live_result)
            return
        try:
            self._queue.put_nowait((x, kind, live_result))
        except queue.Full:
            with self._lock:
                self.dropped += 1

    def close(self) -> None:
        """Stop the mirror worker (idempotent; pending mirrors dropped).

        Safe to call from any thread — including the worker itself (the
        ``on_complete`` hook runs there), where joining would deadlock;
        the worker polls the stop flag instead of waiting on a sentinel.
        """
        self._stop = True
        worker = self._worker
        self._worker = None
        if worker is not None and worker is not threading.current_thread():
            worker.join()

    def _worker_loop(self) -> None:
        while not self._stop:
            try:
                item = self._queue.get(timeout=0.05)
            except queue.Empty:
                continue
            if self._stop or self.complete:
                return
            try:
                self._validate(*item)
            except Exception:
                pass  # a crashed mirror must never touch the live path
            if self.complete:
                return

    # -- scoring -----------------------------------------------------------
    def _validate(self, x: np.ndarray, kind: str, live_result) -> None:
        start = time.perf_counter()
        with nn.use_fused(self.use_fused):
            if kind == "encode":
                shadow_result = self.candidate.model.encode(x)
            else:
                shadow_result = self.candidate.model.predict(x)
        latency_ms = (time.perf_counter() - start) * 1e3
        live = _arrays(live_result)
        shadow = _arrays(shadow_result)
        bitwise = (len(live) == len(shadow)
                   and all(a.shape == b.shape and np.array_equal(a, b)
                           for a, b in zip(live, shadow)))
        if bitwise:
            diff = 0.0
        elif (len(live) == len(shadow)
              and all(a.shape == b.shape for a, b in zip(live, shadow))):
            diff = max(float(np.max(np.abs(a.astype(np.float64)
                                           - b.astype(np.float64))))
                       for a, b in zip(live, shadow))
        else:
            diff = float("inf")
        outputs_ok = bitwise if self.config.max_abs_diff == 0.0 \
            else diff <= self.config.max_abs_diff
        with self._lock:
            if self._complete:
                return
            verdict = ShadowVerdict(
                index=len(self.verdicts), kind=kind, windows=x.shape[0],
                max_abs_diff=diff, bitwise_equal=bitwise,
                latency_ms=latency_ms, outputs_ok=outputs_ok,
                within_budget=latency_ms <= self.config.latency_budget_ms)
            self.verdicts.append(verdict)
            done = (not verdict.passed
                    or len(self.verdicts) >= self.config.shadow_requests)
            if done:
                self._complete = True
        if self._on_verdict is not None:
            self._on_verdict(verdict)
        if done and self._on_complete is not None:
            self._on_complete(self)


class SwapHandle:
    """Caller-facing future for one rolling swap; resolves to a report."""

    def __init__(self, candidate: LoadedModel, validator: ShadowValidator):
        self.candidate = candidate
        self.validator = validator
        self._done = threading.Event()
        self._report: dict | None = None

    def done(self) -> bool:
        return self._done.is_set()

    def wait(self, timeout: float | None = None) -> dict:
        """Block until the swap finalizes; returns the swap report."""
        if not self._done.wait(timeout):
            raise SwapFailed(
                f"swap not finalized within {timeout}s "
                f"({len(self.validator.verdicts)}/"
                f"{self.validator.config.shadow_requests} mirrors scored — "
                "is live traffic flowing?)")
        return self._report

    @property
    def report(self) -> dict | None:
        return self._report

    def _finish(self, report: dict) -> None:
        self._report = report
        self._done.set()


def _arrays(result) -> list[np.ndarray]:
    if isinstance(result, np.ndarray):
        return [result]
    return [np.asarray(part) for part in result]
