"""Checkpoint-backed inference serving (``repro serve``).

Components:

* :mod:`~repro.serve.api` — the :class:`InferenceAPI` protocol
  (``encode`` / ``predict``) every servable model implements.
* :mod:`~repro.serve.registry` — :class:`ModelRegistry`: load models
  from :class:`~repro.checkpoint.CheckpointManager` archives into a
  warm pool, validate request shapes against the checkpoint's data spec.
* :mod:`~repro.serve.cache` — :class:`EmbeddingCache`: LRU cache of
  embeddings keyed by (model fingerprint, input digest).
* :mod:`~repro.serve.batching` — :class:`BatchingEngine`: coalesces
  queued requests into dynamic micro-batches under eval + no-grad.
* :mod:`~repro.serve.metrics` — :class:`LatencyHistogram` and the
  latency-report format.
* :mod:`~repro.serve.service` — :class:`InferenceService`: registry +
  engine + cache behind one façade, with telemetry spans.
* :mod:`~repro.serve.errors` — the typed gateway error taxonomy
  (:class:`Overloaded`, :class:`QuotaExceeded`, :class:`DeadlineExceeded`,
  :class:`CircuitOpen`, :class:`EngineClosed`, :class:`SwapFailed`).
* :mod:`~repro.serve.admission` — per-tenant token-bucket quotas and
  start-time fair queuing (:class:`AdmissionController`,
  :class:`FairScheduler`).
* :mod:`~repro.serve.breaker` — :class:`CircuitBreaker` with jittered
  half-open probing.
* :mod:`~repro.serve.gateway` — :class:`ServingGateway`: the resilient
  multi-tenant front door (admission, deadlines, breaker, rolling swap).
* :mod:`~repro.serve.swap` — shadow validation and the zero-downtime
  swap protocol.

Everything beyond :mod:`api` is imported lazily (PEP 562): ``core`` and
``baselines`` import :mod:`repro.serve.api` for the protocol types, and
the heavy serving modules import ``core`` back — laziness breaks the
cycle.
"""

from __future__ import annotations

import importlib

from .api import InferenceAPI, InferenceUnsupported

__all__ = [
    "InferenceAPI",
    "InferenceUnsupported",
    "ModelRegistry",
    "LoadedModel",
    "RegistryError",
    "ShapeMismatch",
    "EmbeddingCache",
    "CacheStats",
    "BatchingEngine",
    "BatchingConfig",
    "InferenceRequest",
    "LatencyHistogram",
    "latency_report",
    "InferenceService",
    "ServiceConfig",
    "GatewayError",
    "RetryableError",
    "Overloaded",
    "QuotaExceeded",
    "DeadlineExceeded",
    "CircuitOpen",
    "EngineClosed",
    "SwapFailed",
    "TenantConfig",
    "TokenBucket",
    "AdmissionController",
    "FairScheduler",
    "DEFAULT_TENANT",
    "CircuitBreaker",
    "BreakerConfig",
    "ServingGateway",
    "GatewayConfig",
    "GatewayRequest",
    "SwapConfig",
    "ShadowValidator",
    "ShadowVerdict",
    "SwapHandle",
]

_LAZY = {
    "ModelRegistry": ".registry",
    "LoadedModel": ".registry",
    "RegistryError": ".registry",
    "ShapeMismatch": ".registry",
    "EmbeddingCache": ".cache",
    "CacheStats": ".cache",
    "BatchingEngine": ".batching",
    "BatchingConfig": ".batching",
    "InferenceRequest": ".batching",
    "LatencyHistogram": ".metrics",
    "latency_report": ".metrics",
    "InferenceService": ".service",
    "ServiceConfig": ".service",
    "GatewayError": ".errors",
    "RetryableError": ".errors",
    "Overloaded": ".errors",
    "QuotaExceeded": ".errors",
    "DeadlineExceeded": ".errors",
    "CircuitOpen": ".errors",
    "EngineClosed": ".errors",
    "SwapFailed": ".errors",
    "TenantConfig": ".admission",
    "TokenBucket": ".admission",
    "AdmissionController": ".admission",
    "FairScheduler": ".admission",
    "DEFAULT_TENANT": ".admission",
    "CircuitBreaker": ".breaker",
    "BreakerConfig": ".breaker",
    "ServingGateway": ".gateway",
    "GatewayConfig": ".gateway",
    "GatewayRequest": ".gateway",
    "SwapConfig": ".swap",
    "ShadowValidator": ".swap",
    "ShadowVerdict": ".swap",
    "SwapHandle": ".swap",
}


def __getattr__(name: str):
    target = _LAZY.get(name)
    if target is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    value = getattr(importlib.import_module(target, __name__), name)
    globals()[name] = value
    return value


def __dir__():
    return sorted(set(globals()) | set(__all__))
