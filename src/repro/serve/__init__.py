"""Checkpoint-backed inference serving (``repro serve``).

Components:

* :mod:`~repro.serve.api` — the :class:`InferenceAPI` protocol
  (``encode`` / ``predict``) every servable model implements.
* :mod:`~repro.serve.registry` — :class:`ModelRegistry`: load models
  from :class:`~repro.checkpoint.CheckpointManager` archives into a
  warm pool, validate request shapes against the checkpoint's data spec.
* :mod:`~repro.serve.cache` — :class:`EmbeddingCache`: LRU cache of
  embeddings keyed by (model fingerprint, input digest).
* :mod:`~repro.serve.batching` — :class:`BatchingEngine`: coalesces
  queued requests into dynamic micro-batches under eval + no-grad.
* :mod:`~repro.serve.metrics` — :class:`LatencyHistogram` and the
  latency-report format.
* :mod:`~repro.serve.service` — :class:`InferenceService`: registry +
  engine + cache behind one façade, with telemetry spans.

Everything beyond :mod:`api` is imported lazily (PEP 562): ``core`` and
``baselines`` import :mod:`repro.serve.api` for the protocol types, and
the heavy serving modules import ``core`` back — laziness breaks the
cycle.
"""

from __future__ import annotations

import importlib

from .api import InferenceAPI, InferenceUnsupported

__all__ = [
    "InferenceAPI",
    "InferenceUnsupported",
    "ModelRegistry",
    "LoadedModel",
    "RegistryError",
    "ShapeMismatch",
    "EmbeddingCache",
    "CacheStats",
    "BatchingEngine",
    "BatchingConfig",
    "InferenceRequest",
    "LatencyHistogram",
    "latency_report",
    "InferenceService",
    "ServiceConfig",
]

_LAZY = {
    "ModelRegistry": ".registry",
    "LoadedModel": ".registry",
    "RegistryError": ".registry",
    "ShapeMismatch": ".registry",
    "EmbeddingCache": ".cache",
    "CacheStats": ".cache",
    "BatchingEngine": ".batching",
    "BatchingConfig": ".batching",
    "InferenceRequest": ".batching",
    "LatencyHistogram": ".metrics",
    "latency_report": ".metrics",
    "InferenceService": ".service",
    "ServiceConfig": ".service",
}


def __getattr__(name: str):
    target = _LAZY.get(name)
    if target is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    value = getattr(importlib.import_module(target, __name__), name)
    globals()[name] = value
    return value


def __dir__():
    return sorted(set(globals()) | set(__all__))
