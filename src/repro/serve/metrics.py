"""Request-latency accounting for the serving engine.

A :class:`LatencyHistogram` is a streaming recorder of per-request
latencies; :func:`latency_report` renders one or more of them (plus
throughput and cache counters) into the JSON latency-report format the
``repro serve`` CLI emits and ``docs/serving.md`` documents.

Storage is a fixed-bucket streaming histogram
(:class:`repro.obs.metrics._HistogramChild`): memory stays O(buckets)
no matter how long the engine runs, instead of the raw-sample list that
previously grew without bound under sustained traffic.  ``count``,
``mean_ms``, and ``max_ms`` stay exact; ``p50_ms``/``p95_ms`` become
bucket-interpolated (clamped to the observed min/max, so the
``p50 <= p95 <= max`` report invariant holds).
"""

from __future__ import annotations

from ..obs.metrics import DEFAULT_LATENCY_BUCKETS_MS, _HistogramChild

__all__ = ["LatencyHistogram", "latency_report"]

# The engine records seconds; buckets (and the report) are milliseconds.
_BUCKETS_MS = DEFAULT_LATENCY_BUCKETS_MS


class LatencyHistogram:
    """Streaming per-request latency recorder with percentile summaries.

    Records samples in seconds and summarises them as milliseconds —
    serving latencies at this scale are single-digit milliseconds, and
    the report format keeps one unit throughout.  Thread-safe: the
    engine's worker thread and caller threads may record concurrently.
    """

    def __init__(self, name: str = "latency"):
        self.name = name
        self._hist = _HistogramChild(tuple(_BUCKETS_MS))

    def record(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError("latency must be non-negative")
        self._hist.observe(float(seconds) * 1e3)

    @property
    def count(self) -> int:
        return self._hist.count

    def percentile(self, q: float) -> float:
        """q-th percentile in milliseconds (NaN when empty)."""
        return self._hist.percentile(q)

    def summary(self) -> dict:
        """``{count, mean_ms, p50_ms, p95_ms, max_ms}`` for the report."""
        snap = self._hist._snapshot()
        if not snap["count"]:
            return {"count": 0, "mean_ms": None, "p50_ms": None,
                    "p95_ms": None, "max_ms": None}
        return {"count": int(snap["count"]),
                "mean_ms": float(snap["sum"] / snap["count"]),
                "p50_ms": float(self._hist.percentile(50)),
                "p95_ms": float(self._hist.percentile(95)),
                "max_ms": float(snap["max"])}

    def merge(self, other: "LatencyHistogram") -> None:
        self._hist.merge(other._hist)

    def reset(self) -> None:
        self._hist.reset()


def latency_report(histograms: dict[str, LatencyHistogram],
                   windows: int, elapsed_s: float,
                   cache_stats: dict | None = None,
                   **extra) -> dict:
    """Assemble the serving latency report.

    ``windows`` / ``elapsed_s`` give end-to-end throughput; per-kind
    latency summaries come from the histograms; ``cache_stats`` is the
    :meth:`repro.serve.EmbeddingCache.stats` dict when a cache is wired.
    """
    report = {
        "throughput": {
            "windows": int(windows),
            "elapsed_s": float(elapsed_s),
            "windows_per_s": (float(windows / elapsed_s)
                              if elapsed_s > 0 else None),
        },
        "latency_ms": {name: hist.summary()
                       for name, hist in histograms.items()},
    }
    if cache_stats is not None:
        report["cache"] = dict(cache_stats)
    report.update(extra)
    return report
