"""Request-latency accounting for the serving engine.

A :class:`LatencyHistogram` is a streaming recorder of per-request
latencies; :func:`latency_report` renders one or more of them (plus
throughput and cache counters) into the JSON latency-report format the
``repro serve`` CLI emits and ``docs/serving.md`` documents.
"""

from __future__ import annotations

import numpy as np

__all__ = ["LatencyHistogram", "latency_report"]


class LatencyHistogram:
    """Streaming per-request latency recorder with percentile summaries.

    Records raw samples (seconds) and summarises them as milliseconds —
    serving latencies at this scale are single-digit milliseconds, and
    the report format keeps one unit throughout.
    """

    def __init__(self, name: str = "latency"):
        self.name = name
        self._samples: list[float] = []

    def record(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError("latency must be non-negative")
        self._samples.append(float(seconds))

    @property
    def count(self) -> int:
        return len(self._samples)

    def percentile(self, q: float) -> float:
        """q-th percentile in milliseconds (NaN when empty)."""
        if not self._samples:
            return float("nan")
        return float(np.percentile(np.asarray(self._samples), q) * 1e3)

    def summary(self) -> dict:
        """``{count, mean_ms, p50_ms, p95_ms, max_ms}`` for the report."""
        if not self._samples:
            return {"count": 0, "mean_ms": None, "p50_ms": None,
                    "p95_ms": None, "max_ms": None}
        arr = np.asarray(self._samples) * 1e3
        return {"count": int(arr.size),
                "mean_ms": float(arr.mean()),
                "p50_ms": float(np.percentile(arr, 50)),
                "p95_ms": float(np.percentile(arr, 95)),
                "max_ms": float(arr.max())}

    def merge(self, other: "LatencyHistogram") -> None:
        self._samples.extend(other._samples)

    def reset(self) -> None:
        self._samples.clear()


def latency_report(histograms: dict[str, LatencyHistogram],
                   windows: int, elapsed_s: float,
                   cache_stats: dict | None = None,
                   **extra) -> dict:
    """Assemble the serving latency report.

    ``windows`` / ``elapsed_s`` give end-to-end throughput; per-kind
    latency summaries come from the histograms; ``cache_stats`` is the
    :meth:`repro.serve.EmbeddingCache.stats` dict when a cache is wired.
    """
    report = {
        "throughput": {
            "windows": int(windows),
            "elapsed_s": float(elapsed_s),
            "windows_per_s": (float(windows / elapsed_s)
                              if elapsed_s > 0 else None),
        },
        "latency_ms": {name: hist.summary()
                       for name, hist in histograms.items()},
    }
    if cache_stats is not None:
        report["cache"] = dict(cache_stats)
    report.update(extra)
    return report
