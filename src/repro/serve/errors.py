"""Typed serving errors: every way a request can fail, named.

The resilience contract of the gateway and engine is that a submitted
request always resolves — to a result or to one of these errors, never
to a hang or a bare ``RuntimeError``.  Each class is one row of the
failure matrix in ``docs/robustness.md``; clients dispatch on type, and
the retryable ones carry ``retry_after_s`` so a well-behaved client can
back off exactly as long as the server asked.
"""

from __future__ import annotations

__all__ = ["GatewayError", "RetryableError", "Overloaded", "QuotaExceeded",
           "DeadlineExceeded", "CircuitOpen", "EngineClosed", "SwapFailed"]


class GatewayError(RuntimeError):
    """Base class for typed serving-path failures."""


class RetryableError(GatewayError):
    """A rejection the client may retry after ``retry_after_s`` seconds."""

    def __init__(self, message: str, retry_after_s: float = 0.05):
        super().__init__(message)
        self.retry_after_s = float(retry_after_s)


class Overloaded(RetryableError):
    """Bounded-queue load shedding: the gateway's in-flight window budget
    is spent, so the request is refused at the door instead of joining a
    queue it would only time out in."""


class QuotaExceeded(Overloaded):
    """The tenant's token bucket is empty — per-tenant rate limiting, a
    subtype of :class:`Overloaded` so quota-blind clients can treat both
    as 'come back in ``retry_after_s``'."""


class DeadlineExceeded(GatewayError):
    """The request's deadline expired before a forward pass started.

    Raised synchronously when the deadline is already past at submit,
    and delivered through ``result()`` when the request expired while
    queued — the engine sweeps expired requests out of every batch it
    takes, so a deadline storm cannot waste forward passes on answers
    nobody is waiting for.
    """

    def __init__(self, message: str, deadline_ms: float | None = None,
                 waited_ms: float | None = None):
        super().__init__(message)
        self.deadline_ms = deadline_ms
        self.waited_ms = waited_ms


class CircuitOpen(RetryableError):
    """The alias's circuit breaker is open and no degraded answer (cache
    hit, ``stale_ok`` entry) was available for this request."""


class EngineClosed(GatewayError):
    """The engine (or gateway) was closed: pending requests are failed
    with this error and new submissions are refused — a shutdown is an
    observable, typed event, not a hang on an unresolved future."""


class SwapFailed(GatewayError):
    """A rolling model swap could not run (bad candidate, swap already in
    progress).  Shadow-validation *verdict* failures do not raise — they
    roll back and are reported in the swap report."""
