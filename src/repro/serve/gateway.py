"""Resilient multi-tenant serving gateway in front of the batching engine.

The gateway is the front door that makes one
:class:`~repro.serve.BatchingEngine` safe to share: requests pass through
four stages, each with a typed failure mode instead of a hang —

1. **Admission** (:class:`~repro.serve.admission.AdmissionController`):
   per-tenant token-bucket quotas (:class:`QuotaExceeded`) and a
   gateway-wide in-flight window budget (:class:`Overloaded`).  Shedding
   at the door is what keeps accepted-request latency bounded under
   overload — see ``BENCH_serve.json``'s overload rows for the
   alternative.
2. **Breaker** (:class:`~repro.serve.breaker.CircuitBreaker`): when the
   live model keeps failing or timing out, the breaker opens and the
   gateway degrades to cache hits — and, with ``stale_ok``, to entries
   computed by *previous* weights — instead of queueing doomed work.
   No degraded answer available means :class:`CircuitOpen` with a
   ``retry_after_s`` hint.
3. **Fair dispatch** (:class:`~repro.serve.admission.FairScheduler`):
   admitted requests drain to the engine in start-time-fair order, so a
   flooding tenant cannot starve a light one.
4. **Deadlines**: each request's ``deadline_ms`` rides into the engine,
   which refuses to start forwards on expired work
   (:class:`DeadlineExceeded`).

Like the engine, the gateway has a deterministic **deferred** mode
(``submit`` + ``flush``; tests, CLI batch scoring) and a **threaded**
mode (``start``; a dispatcher thread drains the fair queue continuously
while the engine's own worker batches).

Rolling swaps (:meth:`begin_swap`) shadow-validate a candidate on
mirrored live traffic and flip the alias atomically — see
:mod:`repro.serve.swap` for the protocol.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

import numpy as np

from ..obs.metrics import get_registry
from ..telemetry import NULL_RUN
from .admission import (AdmissionController, DEFAULT_TENANT, FairScheduler,
                        TenantConfig)
from .batching import BatchingConfig, BatchingEngine
from .breaker import BreakerConfig, CircuitBreaker
from .cache import EmbeddingCache, input_digest
from .errors import (CircuitOpen, DeadlineExceeded, EngineClosed,
                     Overloaded, QuotaExceeded, SwapFailed)
from .registry import LoadedModel, ModelRegistry
from .swap import ShadowValidator, SwapConfig, SwapHandle

__all__ = ["ServingGateway", "GatewayConfig", "GatewayRequest"]

_SHED_REASONS = ("quota", "overload", "deadline", "circuit", "closed")


@dataclass(frozen=True)
class GatewayConfig:
    """Gateway policy: tenants, budgets, degradation, engine geometry."""

    tenants: tuple = (TenantConfig(),)
    max_queue_windows: int = 1024
    default_deadline_ms: float | None = None
    shed_retry_after_s: float = 0.05
    stale_ok: bool = False
    breaker: BreakerConfig | None = field(default_factory=BreakerConfig)
    batching: BatchingConfig = field(default_factory=BatchingConfig)
    cache_size: int = 1024   # 0 disables the cache (and degraded serving)

    def __post_init__(self):
        if self.default_deadline_ms is not None and self.default_deadline_ms <= 0:
            raise ValueError("default_deadline_ms must be > 0 (or None)")
        if self.cache_size < 0:
            raise ValueError("cache_size must be >= 0")


class GatewayRequest:
    """Caller-facing handle for one request admitted by the gateway.

    Resolves to the engine result, a degraded cache answer (``degraded``
    set to ``"cache"`` or ``"stale"``), or a typed error — never hangs.
    """

    __slots__ = ("tenant", "kind", "windows", "submitted", "deadline_s",
                 "degraded", "x", "_done", "_value", "_error")

    def __init__(self, tenant: str, kind: str, x: np.ndarray,
                 deadline_s: float | None):
        self.tenant = tenant
        self.kind = kind
        self.x = x
        self.windows = x.shape[0]
        self.deadline_s = deadline_s
        self.degraded: str | None = None
        self.submitted = time.perf_counter()
        self._done = threading.Event()
        self._value = None
        self._error: BaseException | None = None

    def done(self) -> bool:
        return self._done.is_set()

    def result(self, timeout: float | None = None):
        """Block until resolved; re-raises the gateway-side error if any."""
        if not self._done.wait(timeout):
            raise TimeoutError("gateway request not resolved within timeout")
        if self._error is not None:
            raise self._error
        return self._value

    @property
    def error(self) -> BaseException | None:
        return self._error


class ServingGateway:
    """Multi-tenant front door over one engine + one registry alias."""

    def __init__(self, registry: ModelRegistry, alias: str = "serving",
                 config: GatewayConfig | None = None, run=None):
        self.registry = registry
        self.alias = alias
        self.config = config or GatewayConfig()
        self.run = run if run is not None else NULL_RUN
        loaded = registry.get(alias)   # RegistryError early if absent
        self.cache = (EmbeddingCache(self.config.cache_size)
                      if self.config.cache_size else None)
        self.admission = AdmissionController(
            self.config.tenants, max_queue_windows=self.config.max_queue_windows)
        self.scheduler = FairScheduler()
        self.breaker = (CircuitBreaker(self.config.breaker,
                                       on_transition=self._on_breaker)
                        if self.config.breaker is not None else None)
        # _state guards: engine identity (swap flip), dispatcher/closed
        # flags, the fair-queue wakeup, and the degraded counters.
        self._state = threading.Condition()
        self._engine = BatchingEngine(loaded, self.config.batching,
                                      cache=self.cache)
        self._dispatcher: threading.Thread | None = None
        self._threaded = False
        self._closed = False
        self._degraded_counts = {"cache": 0, "stale": 0}
        self._shed_counts = {reason: 0 for reason in _SHED_REASONS}
        # Swap machinery: one rolling swap at a time.
        self._swap_lock = threading.Lock()
        self._swap_handle: SwapHandle | None = None
        self._swap_alias: str | None = None
        self._obs = None

    # -- observability -----------------------------------------------------
    def _obs_handles(self):
        """Gateway metric families, memoized per registry generation.

        Families are resolved lazily (first gateway event), never by the
        canonical training workload — the golden exported-name set in
        tests/obs must not grow families that only exist when a gateway
        is serving.
        """
        memo = self._obs
        registry = get_registry()
        if memo is None or memo[0] is not registry:
            memo = (registry, {
                "requests": registry.counter(
                    "gateway_requests_total",
                    "Requests admitted through the gateway",
                    labels=("tenant",)),
                "shed": registry.counter(
                    "gateway_shed_total",
                    "Requests shed at the gateway door", labels=("reason",)),
                "degraded": registry.counter(
                    "gateway_degraded_total",
                    "Requests answered from cache while the breaker was open",
                    labels=("mode",)),
                "request_ms": registry.histogram(
                    "gateway_request_ms",
                    "Door-to-resolution latency", labels=("tenant",)),
                "queue_windows": registry.gauge(
                    "gateway_queue_windows",
                    "Windows admitted but not yet resolved").labels(),
                "breaker_state": registry.gauge(
                    "gateway_breaker_state",
                    "Circuit breaker state (0 closed, 1 half-open, 2 open)"
                ).labels(),
                "breaker_transitions": registry.counter(
                    "gateway_breaker_transitions_total",
                    "Circuit breaker state changes", labels=("to",)),
                "swap_verdicts": registry.counter(
                    "gateway_swap_verdicts_total",
                    "Shadow-validation verdicts", labels=("verdict",)),
                "swaps": registry.counter(
                    "gateway_swaps_total",
                    "Rolling swaps finalized", labels=("outcome",)),
            })
            self._obs = memo
        return memo[1]

    # -- properties --------------------------------------------------------
    @property
    def loaded(self) -> LoadedModel:
        with self._state:
            return self._engine.loaded

    @property
    def fingerprint(self) -> str:
        return self.loaded.fingerprint

    @property
    def closed(self) -> bool:
        return self._closed

    # -- submission --------------------------------------------------------
    def submit(self, x: np.ndarray, kind: str = "encode",
               tenant: str = DEFAULT_TENANT,
               deadline_ms: float | None = None) -> GatewayRequest:
        """Admit one request or raise a typed rejection at the door.

        Raises :class:`QuotaExceeded` / :class:`Overloaded` (both carry
        ``retry_after_s``), :class:`CircuitOpen` when the breaker is open
        and no degraded answer exists, :class:`DeadlineExceeded` for an
        already-dead deadline, :class:`EngineClosed` after ``close()``,
        and :class:`~repro.serve.ShapeMismatch` for bad geometry.
        Successful admission returns a handle that always resolves.
        """
        if self._closed:
            raise EngineClosed("gateway is closed; no new requests accepted")
        handles = self._obs_handles()
        loaded = self.loaded
        x = loaded.validate_input(x)
        if deadline_ms is None:
            deadline_ms = self.config.default_deadline_ms
        deadline_s = (time.perf_counter() + deadline_ms / 1e3
                      if deadline_ms is not None else None)
        windows = x.shape[0]
        try:
            tenant_config = self.admission.admit(
                tenant, windows, retry_after_s=self.config.shed_retry_after_s)
        except (QuotaExceeded, Overloaded) as error:
            reason = "quota" if isinstance(error, QuotaExceeded) else "overload"
            self._count_shed(reason, handles)
            raise
        request = GatewayRequest(tenant, kind, x, deadline_s)
        handles["requests"].labels(tenant=tenant).inc()
        if self.breaker is not None and not self.breaker.allow():
            # Open breaker: the request never queues.  Serve from cache
            # (same-fingerprint hit, or any-fingerprint entry under
            # stale_ok) or shed with a retry hint.
            self.admission.release(windows)
            value, mode = self._degraded_lookup(loaded, x, kind)
            if mode is None:
                self._count_shed("circuit", handles)
                retry = self.breaker.retry_after_s() or self.config.shed_retry_after_s
                raise CircuitOpen(
                    f"circuit breaker open for alias {self.alias!r} and no "
                    f"cached answer for this input; retry in {retry:.3f}s",
                    retry_after_s=retry)
            request.degraded = mode
            with self._state:
                self._degraded_counts[mode] += 1
            handles["degraded"].labels(mode=mode).inc()
            self._resolve(request, value, None, handles)
            return request
        with self._state:
            if self._closed:
                self.admission.release(windows)
                raise EngineClosed("gateway is closed; no new requests accepted")
            self.scheduler.enqueue(tenant, tenant_config.weight, windows,
                                   request)
            self._state.notify_all()
        handles["queue_windows"].set(self.admission.in_flight)
        return request

    def encode(self, x: np.ndarray, tenant: str = DEFAULT_TENANT,
               deadline_ms: float | None = None):
        """Synchronous convenience: submit + (flush when deferred) + result."""
        request = self.submit(x, "encode", tenant=tenant,
                              deadline_ms=deadline_ms)
        if not self._threaded:
            self.flush()
        return request.result()

    def predict(self, x: np.ndarray, tenant: str = DEFAULT_TENANT,
                deadline_ms: float | None = None):
        request = self.submit(x, "predict", tenant=tenant,
                              deadline_ms=deadline_ms)
        if not self._threaded:
            self.flush()
        return request.result()

    # -- dispatch ----------------------------------------------------------
    def _pump(self) -> int:
        """Drain the fair queue into the engine; returns requests moved."""
        moved = 0
        while True:
            popped = self.scheduler.pop()
            if popped is None:
                return moved
            _, __, request = popped
            now = time.perf_counter()
            if request.deadline_s is not None and now >= request.deadline_s:
                # Expired while waiting in the *gateway* fair queue — the
                # engine never sees it, and waited_ms reflects the full
                # door-to-expiry wait.
                waited_ms = (now - request.submitted) * 1e3
                handles = self._obs_handles()
                self._count_shed("deadline", handles)
                self._resolve(request, None, DeadlineExceeded(
                    f"deadline expired after {waited_ms:.1f}ms in the "
                    "gateway queue, before dispatch", waited_ms=waited_ms),
                    handles)
                continue
            with self._state:
                engine = self._engine
            try:
                engine.submit(
                    request.x, request.kind, deadline_s=request.deadline_s,
                    on_done=lambda ereq, greq=request: self._on_engine_done(
                        greq, ereq))
                moved += 1
            except DeadlineExceeded as error:
                self._count_shed("deadline", self._obs_handles())
                self._resolve(request, None, error, self._obs_handles(),
                              record_breaker=False)
            except EngineClosed as error:
                self._resolve(request, None, error, self._obs_handles(),
                              record_breaker=False)
            except BaseException as error:
                self._resolve(request, None, error, self._obs_handles())

    def flush(self) -> int:
        """Deferred mode: fair-dispatch and run everything queued.

        Returns the number of requests the engine fulfilled.  A rolling
        swap may flip the engine mid-flush (a promote finalizing inside
        an ``on_done`` callback); the loop re-reads the engine reference
        so post-flip requests run on the new model.
        """
        fulfilled = 0
        while True:
            self._pump()
            with self._state:
                engine = self._engine
            drained = engine.flush()
            fulfilled += drained
            if drained == 0 and len(self.scheduler) == 0:
                return fulfilled

    def start(self) -> "ServingGateway":
        """Threaded mode: engine worker + gateway dispatcher (idempotent)."""
        if self._closed:
            raise EngineClosed("gateway is closed; cannot start")
        with self._state:
            self._threaded = True
            self._engine.start()
            if self._dispatcher is None:
                self._dispatcher = threading.Thread(
                    target=self._dispatch_loop, name="serve-gateway",
                    daemon=True)
                self._dispatcher.start()
        return self

    def _dispatch_loop(self) -> None:
        while True:
            with self._state:
                while len(self.scheduler) == 0 and not self._closed:
                    self._state.wait()
                if self._closed and len(self.scheduler) == 0:
                    return
            self._pump()

    def _on_engine_done(self, request: GatewayRequest, ereq) -> None:
        """Engine-side resolution: accounting, mirroring, then the caller."""
        handles = self._obs_handles()
        error = ereq._error
        if isinstance(error, DeadlineExceeded):
            self._count_shed("deadline", handles)
        x, kind = request.x, request.kind   # _resolve drops the input ref
        self._resolve(request, ereq._value, error, handles)
        if error is None and x is not None:
            self._mirror(x, kind, ereq._value)

    def _resolve(self, request: GatewayRequest, value,
                 error: BaseException | None, handles,
                 record_breaker: bool = True) -> None:
        self.admission.release(request.windows)
        if (self.breaker is not None and record_breaker
                and request.degraded is None
                and not isinstance(error, EngineClosed)):
            # DeadlineExceeded counts as a failure on purpose: a model
            # (or host) too slow to answer inside the deadline is as
            # unavailable as one that raises.
            self.breaker.record(error is None)
        request._value = value
        request._error = error
        request._done.set()
        handles["request_ms"].labels(tenant=request.tenant).observe(
            (time.perf_counter() - request.submitted) * 1e3)
        handles["queue_windows"].set(self.admission.in_flight)
        request.x = None   # the mirror path keeps its own reference

    def _count_shed(self, reason: str, handles) -> None:
        with self._state:
            self._shed_counts[reason] += 1
        handles["shed"].labels(reason=reason).inc()

    def _degraded_lookup(self, loaded: LoadedModel, x: np.ndarray,
                         kind: str):
        if self.cache is None:
            return None, None
        digest = input_digest(x)
        hit = self.cache.get(loaded.fingerprint, digest, kind)
        if hit is not None:
            return hit, "cache"
        if self.config.stale_ok:
            stale = self.cache.get_stale(digest, kind)
            if stale is not None:
                return stale, "stale"
        return None, None

    def _on_breaker(self, old: str, new: str) -> None:
        handles = self._obs_handles()
        handles["breaker_transitions"].labels(to=new).inc()
        handles["breaker_state"].set(
            {"closed": 0, "half_open": 1, "open": 2}[new])
        if getattr(self.run, "enabled", False):
            self.run.emit("breaker", alias=self.alias, old=old, new=new)

    # -- rolling swap ------------------------------------------------------
    def begin_swap(self, source, config: SwapConfig | None = None,
                   run_root="results/runs") -> SwapHandle:
        """Start a rolling swap to the checkpoint at ``source``.

        Loads and geometry-checks the candidate, then mirrors fulfilled
        live traffic through it (see :mod:`repro.serve.swap`).  The
        returned handle resolves — promote or rollback — once enough
        mirrors are scored; live serving never pauses.  Only one swap
        may be in flight (:class:`SwapFailed` otherwise).
        """
        config = config or SwapConfig()
        staging = config.candidate_alias or f"{self.alias}-candidate"
        with self._swap_lock:
            if self._swap_handle is not None and not self._swap_handle.done():
                raise SwapFailed(
                    f"a swap to {self._swap_alias!r} is already in flight")
            candidate = self.registry.load(source, alias=staging,
                                           run_root=run_root)
            active = self.loaded
            expected = (active.config.seq_len, active.config.input_channels)
            got = (candidate.config.seq_len, candidate.config.input_channels)
            if got != expected:
                self.registry.unload(staging)
                raise SwapFailed(
                    f"candidate geometry (seq_len, channels)={got} does not "
                    f"match the serving alias {expected}; refusing to swap")
            validator = ShadowValidator(
                candidate, config, use_fused=self.config.batching.use_fused,
                threaded=self._threaded, on_verdict=self._on_verdict,
                on_complete=self._finalize_swap)
            handle = SwapHandle(candidate, validator)
            self._swap_handle = handle
            self._swap_alias = staging
            if getattr(self.run, "enabled", False):
                self.run.emit("swap", phase="shadow", alias=self.alias,
                              candidate=candidate.fingerprint,
                              source=str(source),
                              shadow_requests=config.shadow_requests)
            return handle

    def _mirror(self, x: np.ndarray, kind: str, value) -> None:
        handle = self._swap_handle
        if handle is None or handle.done():
            return
        handle.validator.observe(x, kind, value)

    def _on_verdict(self, verdict) -> None:
        outcome = "pass" if verdict.passed else "fail"
        self._obs_handles()["swap_verdicts"].labels(verdict=outcome).inc()
        if getattr(self.run, "enabled", False):
            self.run.emit("swap_shadow", alias=self.alias,
                          **verdict.as_dict())

    def _finalize_swap(self, validator: ShadowValidator,
                       force_rollback: bool = False) -> None:
        """Promote or roll back once shadow validation completes.

        Runs on whichever thread scored the deciding verdict (the shadow
        worker when threaded, the flushing thread when deferred); holds
        no gateway locks while draining the old engine, so in-flight
        requests resolve normally throughout the flip.
        """
        with self._swap_lock:
            handle = self._swap_handle
            staging = self._swap_alias
        if handle is None or handle.validator is not validator:
            return
        promoted = not validator.failed and not force_rollback
        candidate = handle.candidate
        previous = self.loaded
        if promoted:
            new_engine = BatchingEngine(candidate, self.config.batching,
                                        cache=self.cache)
            with self._state:
                old_engine = self._engine
                self._engine = new_engine
                if self._threaded:
                    new_engine.start()
            # In-flight requests finish on the old weights; the drain
            # happens off every gateway lock so nothing stalls.
            old_engine.close(drain=True)
            self.registry.promote(self.alias, candidate)
        self.registry.unload(staging)
        validator.close()
        outcome = "promoted" if promoted else "rolled_back"
        report = {"outcome": outcome, "alias": self.alias,
                  "previous_fingerprint": previous.fingerprint,
                  "candidate_fingerprint": candidate.fingerprint,
                  "serving_fingerprint": self.fingerprint,
                  "shadow": validator.summary()}
        handles = self._obs_handles()
        handles["swaps"].labels(outcome=outcome).inc()
        if getattr(self.run, "enabled", False):
            self.run.emit("swap", phase="final", **{
                key: value for key, value in report.items() if key != "shadow"},
                mirrored=report["shadow"]["mirrored"],
                failed=report["shadow"]["failed"])
        handle._finish(report)

    def abort_swap(self) -> dict | None:
        """Cancel an in-flight swap (rollback); returns its report."""
        with self._swap_lock:
            handle = self._swap_handle
        if handle is None or handle.done():
            return None
        validator = handle.validator
        with validator._lock:
            validator._complete = True   # no further verdicts score
        self._finalize_swap(validator, force_rollback=True)
        return handle.report

    # -- shutdown ----------------------------------------------------------
    def close(self, drain: bool = True) -> None:
        """Shut the gateway down; every admitted request resolves.

        ``drain=True`` serves queued work first; ``drain=False`` fails it
        with :class:`EngineClosed`.  An in-flight swap is aborted (rolled
        back).  Idempotent; submissions after close raise
        :class:`EngineClosed`.
        """
        with self._state:
            if self._closed:
                return
            self._closed = True
            self._state.notify_all()
        dispatcher = self._dispatcher
        if dispatcher is not None:
            dispatcher.join()
            self._dispatcher = None
        handles = self._obs_handles()
        if drain:
            self._pump()
        else:
            error = EngineClosed("gateway closed before the request ran")
            for _, __, request in self.scheduler.drain():
                self._count_shed("closed", handles)
                self._resolve(request, None, error, handles,
                              record_breaker=False)
        self.abort_swap()
        with self._state:
            engine = self._engine
        engine.close(drain=drain)
        if drain:
            # Anything the dispatcher left between its exit and the
            # engine close (submit raced the shutdown) still resolves.
            self._pump()
            engine.flush()

    def __enter__(self) -> "ServingGateway":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- reporting ---------------------------------------------------------
    def report(self) -> dict:
        """One consistent status snapshot (CLI, telemetry, tests)."""
        with self._state:
            engine = self._engine
            degraded = dict(self._degraded_counts)
            shed = dict(self._shed_counts)
        swap_handle = self._swap_handle
        return {
            "alias": self.alias,
            "fingerprint": engine.loaded.fingerprint,
            "closed": self._closed,
            "threaded": self._threaded,
            "admission": self.admission.counters(),
            "dispatched_windows": dict(self.scheduler.dispatched),
            "queued_requests": len(self.scheduler),
            "shed": shed,
            "degraded": degraded,
            "breaker": self.breaker.snapshot() if self.breaker else None,
            "engine": engine.stats(),
            "latency": {kind: hist.summary()
                        for kind, hist in engine.latency.items()},
            "cache": self.cache.stats().as_dict() if self.cache else None,
            "swap": (swap_handle.report or
                     {"outcome": "shadowing",
                      "shadow": swap_handle.validator.summary()})
                    if swap_handle is not None else None,
        }
