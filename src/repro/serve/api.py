"""The unified inference API every servable model speaks.

TimeDRL's premise is that one pre-trained encoder yields reusable
dual-level embeddings (paper Section III): timestamp-level ``z_t`` for
dense tasks (forecasting, anomaly detection) and an instance-level
embedding for whole-series tasks (classification).  Historically each
consumer in this repo re-invented that extraction —
``core/finetune.py``, ``evaluation/*`` and every ``baselines/*`` module
had its own ad-hoc encode loop.  This module collapses the sprawl into
a two-method protocol:

* ``encode(x) -> (timestamp_emb, instance_emb)`` — deterministic
  (eval-mode, no-grad) dual-level embeddings for a raw batch
  ``(B, T, C)``.
* ``predict(x) -> y`` — the model's native prediction for a raw batch.
  For TimeDRL this is the per-patch reconstruction-error score that
  powers :class:`~repro.core.anomaly.AnomalyDetector`; for supervised
  forecasters it is the de-normalised horizon forecast.

Models that only support one half of the protocol raise
:class:`InferenceUnsupported` from the other half (e.g. SSL baselines
are encoders without a predictive head; end-to-end forecasters predict
but have no embedding space worth serving).

This module is deliberately dependency-free (numpy + typing only) so
``repro.core`` and ``repro.baselines`` can import it without pulling in
the serving engine.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

import numpy as np

__all__ = ["InferenceAPI", "InferenceUnsupported"]


class InferenceUnsupported(RuntimeError):
    """A model does not implement this half of the inference API.

    Raised by ``encode`` on predictor-only models and by ``predict`` on
    encoder-only models.  The serving layer converts it into a typed
    request rejection rather than a 500-style crash.
    """


@runtime_checkable
class InferenceAPI(Protocol):
    """Structural type for anything the serving subsystem can host."""

    def encode(self, x: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Raw batch ``(B, T, C)`` to ``(timestamp_emb, instance_emb)``."""
        ...

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Raw batch ``(B, T, C)`` to the model's native prediction."""
        ...
