"""LRU cache of inference results keyed by (model fingerprint, input digest).

TimeDRL's instance-level embeddings are deterministic functions of
(frozen weights, input window) — eval-mode dropout is the identity — so
repeated windows (dashboards re-scoring the same recent history, retries,
overlapping strides) can be answered from memory.  The fingerprint half
of the key is the checkpoint's ``content_sha256``, so a cache shared
across model reloads can never serve stale embeddings after weights
change.

Values are stored with ``writeable=False``: a hit hands back the same
array contents every time, and no caller can corrupt the cached copy.

All cache state — the LRU map *and* the hit/miss/eviction counters — is
guarded by one lock: the batching engine's worker thread and foreground
callers (``flush``, ``stats``, telemetry reporters) touch the cache
concurrently, and unlocked ``+= 1`` counter updates lose increments
under that interleaving.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from ..obs.metrics import get_registry

__all__ = ["EmbeddingCache", "CacheStats", "input_digest"]


def input_digest(x: np.ndarray) -> str:
    """Content digest of one input array: bytes + shape + dtype.

    Shape and dtype are folded in so e.g. ``(2, 8, 1)`` and ``(1, 16, 1)``
    views over the same buffer cannot collide.
    """
    arr = np.ascontiguousarray(x)
    digest = hashlib.sha256()
    digest.update(str(arr.shape).encode())
    digest.update(str(arr.dtype).encode())
    digest.update(arr.tobytes())
    return digest.hexdigest()


@dataclass
class CacheStats:
    """Counter snapshot surfaced through telemetry and the latency report."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    size: int = 0
    capacity: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def as_dict(self) -> dict:
        return {"hits": self.hits, "misses": self.misses,
                "evictions": self.evictions, "size": self.size,
                "capacity": self.capacity, "hit_rate": self.hit_rate}


class EmbeddingCache:
    """Bounded LRU mapping ``(fingerprint, input digest, kind)`` to results.

    A *result* is whatever the engine computed for one request — the
    ``(timestamp_emb, instance_emb)`` tuple for encode requests, the
    prediction array for predict requests.  Arrays are frozen
    (``writeable=False``) on insertion.
    """

    def __init__(self, capacity: int = 1024):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._entries: "OrderedDict[tuple, object]" = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._lock = threading.Lock()
        # (registry, hits, misses, evictions) memo — get/put run per
        # request, and re-resolving the counter families through the
        # registry each call would dominate the increment.  Rebuilt when
        # the registry identity changes (enable/disable/set_registry);
        # benign if two threads race to rebuild.
        self._obs = None

    def _obs_counters(self):
        memo = self._obs
        registry = get_registry()
        if memo is None or memo[0] is not registry:
            # .labels() resolves each unlabeled family down to its single
            # child, so get/put pay one method call per count, not a
            # family->child delegation.
            memo = (registry,
                    registry.counter("serve_cache_hits_total",
                                     "Embedding cache hits").labels(),
                    registry.counter("serve_cache_misses_total",
                                     "Embedding cache misses").labels(),
                    registry.counter("serve_cache_evictions_total",
                                     "Embedding cache evictions").labels())
            self._obs = memo
        return memo

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, fingerprint: str, digest: str, kind: str = "encode"):
        """Return the cached result or ``None`` (and count hit/miss)."""
        key = (fingerprint, digest, kind)
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._misses += 1
            else:
                self._entries.move_to_end(key)
                self._hits += 1
        __, hits, misses, ___ = self._obs_counters()
        if entry is None:
            misses.inc()
            return None
        hits.inc()
        return entry

    def put(self, fingerprint: str, digest: str, value, kind: str = "encode"):
        """Insert (or refresh) a result, evicting the LRU entry if full."""
        key = (fingerprint, digest, kind)
        frozen = _freeze(value)
        evicted = False
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            elif len(self._entries) >= self.capacity:
                self._entries.popitem(last=False)
                self._evictions += 1
                evicted = True
            self._entries[key] = frozen
        if evicted:
            self._obs_counters()[3].inc()
        return frozen

    def get_stale(self, digest: str, kind: str = "encode"):
        """Degraded-mode lookup: the most recently used entry for this
        input under *any* fingerprint.

        Only the gateway's circuit-breaker ``stale_ok`` path calls this
        — when the alias's breaker is open, an answer computed by a
        previous set of weights beats no answer at all, and the caller
        has explicitly opted into that trade.  Does not touch the
        hit/miss counters (a degraded serve is not a cache hit; the
        gateway counts it under its own ``gateway_degraded_total``), and
        the O(size) scan only runs while the breaker is open.
        """
        with self._lock:
            for key in reversed(self._entries):
                if key[1] == digest and key[2] == kind:
                    return self._entries[key]
        return None

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def stats(self) -> CacheStats:
        with self._lock:
            stats = CacheStats(hits=self._hits, misses=self._misses,
                               evictions=self._evictions,
                               size=len(self._entries),
                               capacity=self.capacity)
        registry = get_registry()
        registry.gauge("serve_cache_hit_rate",
                       "Embedding cache hit rate").set(stats.hit_rate)
        registry.gauge("serve_cache_size",
                       "Embedding cache live entries").set(stats.size)
        return stats


def _freeze(value):
    """Recursively mark arrays read-only (tuples/lists of arrays allowed)."""
    if isinstance(value, np.ndarray):
        value = np.ascontiguousarray(value)
        value.flags.writeable = False
        return value
    if isinstance(value, (tuple, list)):
        return tuple(_freeze(item) for item in value)
    return value
