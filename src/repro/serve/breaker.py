"""Per-alias circuit breaker: stop hammering a failing model.

The breaker watches request outcomes over a rolling window and, when the
failure ratio crosses the threshold, *opens*: live forwards stop and the
gateway degrades to cache hits (and, opted-in, ``stale_ok`` entries)
instead of queueing doomed work behind a broken model.  After a jittered
backoff — the same :class:`~repro.utils.fileio.BackoffPolicy` the file
retry helper uses, so probe storms de-synchronize the same way read
retries do — the breaker goes *half-open* and lets a limited number of
probe requests through; enough consecutive successes re-close it, one
failure re-opens it with a longer backoff.

States are exported as a gauge (``gateway_breaker_state``: 0 closed,
1 half-open, 2 open) and every transition as a labeled counter, so an
open breaker is visible on the dashboard and can page through an SLO
rule (``gateway_breaker_state < 2``).
"""

from __future__ import annotations

import collections
import random
import threading
import time
from dataclasses import dataclass, field

from ..utils.fileio import BackoffPolicy

__all__ = ["CircuitBreaker", "BreakerConfig", "CLOSED", "OPEN", "HALF_OPEN"]

CLOSED, HALF_OPEN, OPEN = "closed", "half_open", "open"
_STATE_CODE = {CLOSED: 0, HALF_OPEN: 1, OPEN: 2}


@dataclass(frozen=True)
class BreakerConfig:
    """Trip and recovery policy.

    The breaker trips when, among the last ``window`` outcomes (and at
    least ``min_requests`` of them), the failure ratio reaches
    ``failure_ratio``.  ``probe_successes`` consecutive half-open
    successes re-close it.  ``backoff`` schedules open->half-open
    probing; attempt ``k`` is the k-th consecutive re-open, so a model
    that keeps failing is probed less and less often (with jitter).
    """

    window: int = 20
    min_requests: int = 5
    failure_ratio: float = 0.5
    probe_successes: int = 2
    backoff: BackoffPolicy = field(default_factory=lambda: BackoffPolicy(
        initial=0.5, multiplier=2.0, jitter=0.2, max_delay=30.0))

    def __post_init__(self):
        if self.window < 1 or self.min_requests < 1:
            raise ValueError("window and min_requests must be >= 1")
        if not 0 < self.failure_ratio <= 1:
            raise ValueError("failure_ratio must be in (0, 1]")
        if self.probe_successes < 1:
            raise ValueError("probe_successes must be >= 1")


class CircuitBreaker:
    """Rolling-window failure breaker with jittered half-open probing.

    Thread-safe; ``clock`` and ``rng`` are injectable so tests pin both
    time and jitter.  ``on_transition(old, new)`` (optional) is invoked
    outside the lock on every state change — the gateway hangs metric
    and telemetry emission there.
    """

    def __init__(self, config: BreakerConfig | None = None,
                 clock=time.monotonic, rng: random.Random | None = None,
                 on_transition=None):
        self.config = config or BreakerConfig()
        self._clock = clock
        self._rng = rng or random.Random()
        self._on_transition = on_transition
        self._lock = threading.Lock()
        self._state = CLOSED
        self._outcomes = collections.deque(maxlen=self.config.window)
        self._opened_count = 0      # consecutive opens (backoff attempt)
        self._probe_at = 0.0        # when half-open probing may begin
        self._probe_successes = 0
        self._probe_inflight = 0

    # -- state ------------------------------------------------------------
    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    @property
    def state_code(self) -> int:
        return _STATE_CODE[self.state]

    def retry_after_s(self) -> float:
        """Seconds until a probe may run (0 when not open)."""
        with self._lock:
            if self._state != OPEN:
                return 0.0
            return max(0.0, self._probe_at - self._clock())

    def snapshot(self) -> dict:
        with self._lock:
            outcomes = list(self._outcomes)
            return {"state": self._state,
                    "window": len(outcomes),
                    "failures": outcomes.count(False),
                    "consecutive_opens": self._opened_count,
                    "retry_after_s": (max(0.0, self._probe_at - self._clock())
                                      if self._state == OPEN else 0.0)}

    # -- the two calls the gateway makes ----------------------------------
    def allow(self) -> bool:
        """May a live forward run now?

        Closed: always.  Open: no, until the backoff elapses — at which
        point the breaker turns half-open and grants probe slots.
        Half-open: only while a probe slot is free.
        """
        transition = None
        with self._lock:
            if self._state == CLOSED:
                return True
            if self._state == OPEN:
                if self._clock() < self._probe_at:
                    return False
                transition = (OPEN, HALF_OPEN)
                self._state = HALF_OPEN
                self._probe_successes = 0
                self._probe_inflight = 0
            # half-open: one probe in flight at a time, so a burst during
            # recovery cannot stampede a barely-healed model.
            if self._probe_inflight >= 1:
                allowed = False
            else:
                self._probe_inflight += 1
                allowed = True
        if transition is not None:
            self._notify(*transition)
        return allowed

    def record(self, ok: bool) -> None:
        """Record one live-forward outcome (success or typed failure)."""
        transition = None
        with self._lock:
            if self._state == HALF_OPEN:
                self._probe_inflight = max(0, self._probe_inflight - 1)
                if ok:
                    self._probe_successes += 1
                    if self._probe_successes >= self.config.probe_successes:
                        transition = (HALF_OPEN, CLOSED)
                        self._state = CLOSED
                        self._outcomes.clear()
                        self._opened_count = 0
                else:
                    transition = (HALF_OPEN, OPEN)
                    self._open_locked()
            elif self._state == CLOSED:
                self._outcomes.append(ok)
                if self._tripped_locked():
                    transition = (CLOSED, OPEN)
                    self._open_locked()
            # open: a straggler from before the trip — ignore.
        if transition is not None:
            self._notify(*transition)

    # -- internals ---------------------------------------------------------
    def _tripped_locked(self) -> bool:
        outcomes = self._outcomes
        if len(outcomes) < self.config.min_requests:
            return False
        failures = sum(1 for ok in outcomes if not ok)
        return failures / len(outcomes) >= self.config.failure_ratio

    def _open_locked(self) -> None:
        self._state = OPEN
        delay = self.config.backoff.delay(self._opened_count, rng=self._rng)
        self._opened_count += 1
        self._probe_at = self._clock() + (delay if delay is not None else
                                          self.config.backoff.max_delay)
        self._outcomes.clear()

    def _notify(self, old: str, new: str) -> None:
        if self._on_transition is not None:
            try:
                self._on_transition(old, new)
            except Exception:
                pass  # observability must never break the breaker
