"""The serving façade: registry + batching engine + cache + telemetry.

:class:`InferenceService` is what the ``repro serve`` CLI (and any
embedding consumer) talks to: point it at a checkpoint source, then call
:meth:`encode` / :meth:`predict` per request or :meth:`serve_windows`
for a whole workload, and ask :meth:`report` for the latency/cache
summary.  A telemetry :class:`~repro.telemetry.Run` (optional, caller
owned) receives a span per workload and structured ``metric`` events
with the report numbers — the same observability spine training uses.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..obs import trace as obs_trace
from ..telemetry import NULL_RUN
from .batching import BatchingConfig, BatchingEngine
from .cache import EmbeddingCache
from .metrics import latency_report
from .registry import LoadedModel, ModelRegistry

__all__ = ["InferenceService", "ServiceConfig"]


@dataclass
class ServiceConfig:
    """End-to-end serving knobs (engine geometry + cache sizing)."""

    max_batch_size: int = 64
    max_wait_ms: float = 2.0
    cache_size: int = 1024   # 0 disables the embedding cache
    use_fused: bool = True

    def batching(self) -> BatchingConfig:
        return BatchingConfig(max_batch_size=self.max_batch_size,
                              max_wait_ms=self.max_wait_ms,
                              use_fused=self.use_fused)


class InferenceService:
    """One warm model behind a micro-batching, caching front door."""

    def __init__(self, loaded: LoadedModel,
                 config: ServiceConfig | None = None, run=None):
        self.loaded = loaded
        self.config = config or ServiceConfig()
        self.run = NULL_RUN if run is None else run
        self.cache = (EmbeddingCache(self.config.cache_size)
                      if self.config.cache_size > 0 else None)
        self.engine = BatchingEngine(loaded, self.config.batching(),
                                     cache=self.cache)
        self._started = time.perf_counter()

    @classmethod
    def from_checkpoint(cls, source, config: ServiceConfig | None = None,
                        run=None, run_root="results/runs") -> "InferenceService":
        """Build a service straight from a checkpoint file/dir/run id."""
        registry = ModelRegistry(run=run)
        loaded = registry.load(source, alias="serving", run_root=run_root)
        return cls(loaded, config=config, run=run)

    # -- request interface ------------------------------------------------
    def encode(self, x: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Dual-level embeddings for a batch, through the engine + cache."""
        return self.engine.encode(x)

    def predict(self, x: np.ndarray) -> np.ndarray:
        return self.engine.predict(x)

    def serve_windows(self, windows: np.ndarray, mode: str = "encode",
                      request_size: int = 1):
        """Serve a whole workload: one request per ``request_size`` windows.

        This is the CLI batch mode: the workload is split into requests
        (cache granularity), the engine coalesces them back into
        micro-batches, and the per-request results are re-assembled in
        submission order.  Returns ``(timestamp, instance)`` stacked
        arrays for ``mode="encode"`` or the stacked prediction array for
        ``mode="predict"``.
        """
        if request_size < 1:
            raise ValueError("request_size must be >= 1")
        windows = np.asarray(windows)
        # One root trace per workload: every submit below derives its
        # context from this span, so the whole serve request shares one
        # trace_id through engine, worker thread, and cache.
        with self.run.span("serve_windows", mode=mode,
                           windows=int(windows.shape[0])):
            with obs_trace.span("service.serve_windows", mode=mode,
                                windows=int(windows.shape[0])):
                requests = [self.engine.submit(windows[s:s + request_size],
                                               mode)
                            for s in range(0, windows.shape[0], request_size)]
                self.engine.flush()
                results = [r.result() for r in requests]
        if mode == "encode":
            return (np.concatenate([r[0] for r in results]),
                    np.concatenate([r[1] for r in results]))
        return np.concatenate(results)

    # -- reporting --------------------------------------------------------
    def report(self, emit: bool = True) -> dict:
        """Latency report for everything served so far.

        With ``emit=True`` the numbers also land in the telemetry run as
        a structured ``metric`` event (type ``serve_report``).
        """
        elapsed = time.perf_counter() - self._started
        stats = self.cache.stats().as_dict() if self.cache is not None else None
        report = latency_report(
            self.engine.latency,
            windows=self.engine.windows_served,
            elapsed_s=elapsed,
            cache_stats=stats,
            model={"fingerprint": self.loaded.fingerprint,
                   "source": self.loaded.source,
                   "seq_len": self.loaded.config.seq_len,
                   "input_channels": self.loaded.config.input_channels},
            engine={"max_batch_size": self.config.max_batch_size,
                    "max_wait_ms": self.config.max_wait_ms,
                    "batches_run": self.engine.batches_run},
        )
        if emit and self.run.enabled:
            payload = {"windows_per_s": report["throughput"]["windows_per_s"],
                       "batches_run": self.engine.batches_run}
            for kind, summary in report["latency_ms"].items():
                if summary["count"]:
                    payload[f"{kind}_p50_ms"] = summary["p50_ms"]
                    payload[f"{kind}_p95_ms"] = summary["p95_ms"]
            if stats is not None:
                payload["cache_hit_rate"] = stats["hit_rate"]
            self.run.emit("metric", metric="serve_report", **payload)
        return report
