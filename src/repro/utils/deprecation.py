"""One-liner for the legacy-API shims kept through the inference redesign."""

from __future__ import annotations

import warnings

__all__ = ["warn_deprecated"]


def warn_deprecated(old: str, new: str) -> None:
    """Emit a ``DeprecationWarning`` pointing callers at the replacement.

    ``stacklevel=3`` attributes the warning to the caller of the
    deprecated method (skipping this helper and the shim itself).
    """
    warnings.warn(f"{old} is deprecated; use {new} instead",
                  DeprecationWarning, stacklevel=3)
