"""Training utilities: early stopping, metric tracking, timing, seeding."""

from __future__ import annotations

import json
import pathlib
import time

import numpy as np

from .fileio import atomic_write_text

__all__ = ["EarlyStopping", "MetricTracker", "Timer", "set_global_seed",
           "format_profile"]


def set_global_seed(seed: int) -> np.random.Generator:
    """Seed NumPy's legacy global RNG *and* return a fresh Generator.

    The library itself threads explicit Generators everywhere; this helper
    exists for user scripts that also rely on the global state.
    """
    np.random.seed(seed)
    return np.random.default_rng(seed)


def format_profile(snapshot: dict[str, dict[str, float]],
                   sort_by: str = "total_s", limit: int | None = None) -> str:
    """Render a :func:`repro.nn.profiler.snapshot` as an aligned text table.

    ``sort_by`` is one of ``count``/``total_s``/``self_s``/``bytes``;
    ``limit`` keeps only the top rows after sorting.
    """
    if sort_by not in ("count", "total_s", "self_s", "bytes"):
        raise ValueError(f"unknown sort key {sort_by!r}")
    rows = sorted(snapshot.items(), key=lambda kv: kv[1][sort_by], reverse=True)
    if limit is not None:
        rows = rows[:limit]
    if not rows:
        return "(no ops recorded)"
    name_width = max(len("op"), *(len(name) for name, __ in rows))
    header = (f"{'op':<{name_width}}  {'count':>8}  {'total_ms':>10}  "
              f"{'self_ms':>10}  {'alloc_mb':>9}")
    lines = [header, "-" * len(header)]
    for name, stat in rows:
        lines.append(
            f"{name:<{name_width}}  {int(stat['count']):>8}  "
            f"{stat['total_s'] * 1e3:>10.2f}  {stat['self_s'] * 1e3:>10.2f}  "
            f"{stat['bytes'] / 1e6:>9.1f}")
    return "\n".join(lines)


class EarlyStopping:
    """Stop when a monitored metric stops improving.

    Example
    -------
    >>> stopper = EarlyStopping(patience=3, mode="min")
    >>> for epoch in range(100):
    ...     if stopper.step(validation_loss):
    ...         break
    """

    def __init__(self, patience: int = 5, mode: str = "min", min_delta: float = 0.0):
        if patience < 1:
            raise ValueError("patience must be >= 1")
        if mode not in ("min", "max"):
            raise ValueError("mode must be 'min' or 'max'")
        self.patience = patience
        self.mode = mode
        self.min_delta = min_delta
        self.best: float | None = None
        self.best_step: int = -1
        self._step_count = 0
        self._stale = 0

    def step(self, value: float) -> bool:
        """Record a new metric value; returns True when training should stop."""
        improved = self.best is None or (
            value < self.best - self.min_delta if self.mode == "min"
            else value > self.best + self.min_delta)
        if improved:
            self.best = value
            self.best_step = self._step_count
            self._stale = 0
        else:
            self._stale += 1
        self._step_count += 1
        return self._stale >= self.patience

    @property
    def should_stop(self) -> bool:
        return self._stale >= self.patience

    def state_dict(self) -> dict:
        """Complete stopper state, for checkpoint/resume round-trips."""
        return {"patience": self.patience, "mode": self.mode,
                "min_delta": self.min_delta, "best": self.best,
                "best_step": self.best_step, "step_count": self._step_count,
                "stale": self._stale}

    def load_state_dict(self, state: dict) -> None:
        self.patience = int(state["patience"])
        self.mode = state["mode"]
        self.min_delta = float(state["min_delta"])
        self.best = None if state["best"] is None else float(state["best"])
        self.best_step = int(state["best_step"])
        self._step_count = int(state["step_count"])
        self._stale = int(state["stale"])


class MetricTracker:
    """Accumulate scalar metrics over steps/epochs and export them.

    Keeps per-key histories; ``summary`` reports last/best/mean, ``save``
    writes a JSON artifact next to experiment results.
    """

    def __init__(self):
        self.history: dict[str, list[float]] = {}

    def log(self, **metrics: float) -> None:
        for key, value in metrics.items():
            self.history.setdefault(key, []).append(float(value))

    def last(self, key: str) -> float:
        return self.history[key][-1]

    def best(self, key: str, mode: str = "min") -> float:
        values = self.history[key]
        return min(values) if mode == "min" else max(values)

    def mean(self, key: str) -> float:
        return float(np.mean(self.history[key]))

    def summary(self) -> dict[str, dict[str, float]]:
        return {
            key: {"last": values[-1], "min": min(values), "max": max(values),
                  "mean": float(np.mean(values)), "count": len(values)}
            for key, values in self.history.items()
        }

    def save(self, path) -> None:
        """Write the JSON artifact atomically (temp file + rename).

        Parent directories are created on demand, and an interrupted run
        can never leave a truncated/half-written JSON file behind.
        """
        payload = {"history": self.history, "summary": self.summary()}
        atomic_write_text(path, json.dumps(payload, indent=2))

    @classmethod
    def load(cls, path) -> "MetricTracker":
        tracker = cls()
        payload = json.loads(pathlib.Path(path).read_text())
        tracker.history = {k: list(map(float, v)) for k, v in payload["history"].items()}
        return tracker

    def state_dict(self) -> dict:
        """Deep copy of the history, for checkpoint/resume round-trips."""
        return {"history": {key: list(values)
                            for key, values in self.history.items()}}

    def load_state_dict(self, state: dict) -> None:
        self.history = {key: [float(v) for v in values]
                        for key, values in state["history"].items()}


class Timer:
    """Context-manager stopwatch: ``with Timer() as t: ...; t.seconds``.

    The same instance is safely reusable: each ``with`` block re-arms the
    clock, a stray ``__exit__`` without a matching ``__enter__`` is a
    no-op (it used to raise ``TypeError``), and re-entering while already
    running simply restarts the measurement.

    With ``accumulate=True`` the timer sums laps instead of overwriting —
    handy for "total time in X across all epochs"::

        epoch_timer = Timer(accumulate=True)
        for epoch in range(epochs):
            with epoch_timer:
                train_one_epoch()
        print(epoch_timer.seconds, epoch_timer.laps, epoch_timer.last)
    """

    def __init__(self, accumulate: bool = False):
        self.accumulate = accumulate
        self.seconds: float = 0.0   # last lap, or the running sum
        self.last: float = 0.0      # most recent lap, in either mode
        self.laps: int = 0
        self._start: float | None = None

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        if self._start is None:
            return  # unmatched __exit__: keep previous measurements intact
        self.last = time.perf_counter() - self._start
        self._start = None
        self.laps += 1
        if self.accumulate:
            self.seconds += self.last
        else:
            self.seconds = self.last

    def reset(self) -> None:
        """Zero all measurements (does not stop a running lap)."""
        self.seconds = 0.0
        self.last = 0.0
        self.laps = 0
