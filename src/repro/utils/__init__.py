"""``repro.utils`` — training utilities shared by experiments and examples."""

from .fileio import BackoffPolicy, atomic_write_text
from .training import EarlyStopping, MetricTracker, Timer, set_global_seed

__all__ = ["EarlyStopping", "MetricTracker", "Timer", "set_global_seed",
           "atomic_write_text", "BackoffPolicy"]
