"""Small filesystem helpers shared by telemetry, checkpoints and metrics."""

from __future__ import annotations

import os
import pathlib
import random
import time
from dataclasses import dataclass

__all__ = ["atomic_write_text", "atomic_write_bytes", "read_with_retry",
           "BackoffPolicy"]


def atomic_write_text(path, text: str) -> pathlib.Path:
    """Write ``text`` to ``path`` atomically, creating parent directories.

    The text lands in a same-directory temp file first and is moved into
    place with :func:`os.replace`, so readers (and interrupted writers)
    never observe a truncated file — an interrupted run leaves either the
    previous artifact or the new one, nothing in between.
    """
    return _atomic_write(path, text, binary=False)


def atomic_write_bytes(path, payload: bytes) -> pathlib.Path:
    """Binary twin of :func:`atomic_write_text` (checkpoints, archives)."""
    return _atomic_write(path, payload, binary=True)


def _atomic_write(path, payload, binary: bool) -> pathlib.Path:
    target = pathlib.Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    temp = target.with_name(f".{target.name}.tmp{os.getpid()}")
    try:
        if binary:
            temp.write_bytes(payload)
        else:
            temp.write_text(payload, encoding="utf-8")
        os.replace(temp, target)
    finally:
        if temp.exists():  # only on failure before the replace
            temp.unlink(missing_ok=True)
    return target


@dataclass(frozen=True)
class BackoffPolicy:
    """Exponential backoff with full jitter and a wall-clock budget.

    One policy object describes a whole retry schedule: attempt ``k``
    (0-based) waits ``initial * multiplier**k`` seconds, capped at
    ``max_delay``, with up to ``jitter`` (a fraction of the delay)
    subtracted uniformly at random — jitter spreads simultaneous
    retriers (many data-loader workers hitting the same flaky mount,
    circuit breakers probing the same dependency) so they do not
    re-collide in lockstep.  ``max_total`` bounds the *cumulative* sleep
    across the schedule: once the budget is spent, :meth:`delay` returns
    ``None`` and the caller must give up, no matter how many attempts
    its own counter would still allow.

    The same policy drives :func:`read_with_retry` and the serving
    circuit breaker's half-open probe schedule
    (:class:`repro.serve.CircuitBreaker`), so "how we back off" is one
    reviewed decision, not one per subsystem.
    """

    initial: float = 0.05
    multiplier: float = 2.0
    jitter: float = 0.0       # fraction of the delay, in [0, 1]
    max_delay: float = 30.0
    max_total: float | None = None

    def __post_init__(self):
        if self.initial < 0 or self.multiplier < 1:
            raise ValueError("initial must be >= 0 and multiplier >= 1")
        if not 0 <= self.jitter <= 1:
            raise ValueError("jitter must be a fraction in [0, 1]")
        if self.max_total is not None and self.max_total < 0:
            raise ValueError("max_total must be >= 0")

    def delay(self, attempt: int, slept: float = 0.0,
              rng: random.Random | None = None) -> float | None:
        """Delay before retry ``attempt`` (0-based), or ``None`` when the
        ``max_total`` wall-clock budget (``slept`` so far) is exhausted."""
        base = min(self.initial * self.multiplier ** attempt, self.max_delay)
        if self.jitter:
            base -= base * self.jitter * (rng or random).random()
        if self.max_total is not None:
            remaining = self.max_total - slept
            if remaining <= 0:
                return None
            base = min(base, remaining)
        return base


def read_with_retry(reader, path, attempts: int = 3, backoff: float = 0.05,
                    retry_on: tuple[type[BaseException], ...] = (OSError,),
                    policy: BackoffPolicy | None = None,
                    rng: random.Random | None = None):
    """Call ``reader(path)``, retrying transient failures with backoff.

    Network filesystems and containers occasionally surface spurious
    ``OSError``s on reads that succeed moments later; data loaders wrap
    their file opens in this helper so one transient hiccup doesn't kill
    an hours-long run.  Waits follow a :class:`BackoffPolicy` —
    exponential doubling from ``backoff`` with 10% jitter and a total
    wall-clock cap of 32x the base delay by default, so a persistently
    failing path cannot stall a caller for minutes even with a large
    ``attempts``.  Pass ``policy`` to override the schedule (and ``rng``
    to pin the jitter in tests).  The final failure re-raises the
    original exception unchanged so callers keep their typed errors.
    """
    if attempts < 1:
        raise ValueError("attempts must be >= 1")
    if policy is None:
        policy = BackoffPolicy(initial=backoff, jitter=0.1,
                               max_total=32 * backoff)
    slept = 0.0
    for attempt in range(attempts):
        try:
            return reader(path)
        except retry_on:
            delay = (None if attempt == attempts - 1
                     else policy.delay(attempt, slept=slept, rng=rng))
            if delay is None:  # attempts or wall-clock budget exhausted
                raise
            time.sleep(delay)
            slept += delay
    raise AssertionError("unreachable")  # pragma: no cover
