"""Small filesystem helpers shared by telemetry and metric artifacts."""

from __future__ import annotations

import os
import pathlib

__all__ = ["atomic_write_text"]


def atomic_write_text(path, text: str) -> pathlib.Path:
    """Write ``text`` to ``path`` atomically, creating parent directories.

    The text lands in a same-directory temp file first and is moved into
    place with :func:`os.replace`, so readers (and interrupted writers)
    never observe a truncated file — an interrupted run leaves either the
    previous artifact or the new one, nothing in between.
    """
    target = pathlib.Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    temp = target.with_name(f".{target.name}.tmp{os.getpid()}")
    try:
        temp.write_text(text, encoding="utf-8")
        os.replace(temp, target)
    finally:
        if temp.exists():  # only on failure before the replace
            temp.unlink(missing_ok=True)
    return target
