"""Small filesystem helpers shared by telemetry, checkpoints and metrics."""

from __future__ import annotations

import os
import pathlib
import time

__all__ = ["atomic_write_text", "atomic_write_bytes", "read_with_retry"]


def atomic_write_text(path, text: str) -> pathlib.Path:
    """Write ``text`` to ``path`` atomically, creating parent directories.

    The text lands in a same-directory temp file first and is moved into
    place with :func:`os.replace`, so readers (and interrupted writers)
    never observe a truncated file — an interrupted run leaves either the
    previous artifact or the new one, nothing in between.
    """
    return _atomic_write(path, text, binary=False)


def atomic_write_bytes(path, payload: bytes) -> pathlib.Path:
    """Binary twin of :func:`atomic_write_text` (checkpoints, archives)."""
    return _atomic_write(path, payload, binary=True)


def _atomic_write(path, payload, binary: bool) -> pathlib.Path:
    target = pathlib.Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    temp = target.with_name(f".{target.name}.tmp{os.getpid()}")
    try:
        if binary:
            temp.write_bytes(payload)
        else:
            temp.write_text(payload, encoding="utf-8")
        os.replace(temp, target)
    finally:
        if temp.exists():  # only on failure before the replace
            temp.unlink(missing_ok=True)
    return target


def read_with_retry(reader, path, attempts: int = 3, backoff: float = 0.05,
                    retry_on: tuple[type[BaseException], ...] = (OSError,)):
    """Call ``reader(path)``, retrying transient failures with backoff.

    Network filesystems and containers occasionally surface spurious
    ``OSError``s on reads that succeed moments later; data loaders wrap
    their file opens in this helper so one transient hiccup doesn't kill
    an hours-long run.  The wait doubles after each failed attempt
    (``backoff``, ``2*backoff``, ...); the final failure re-raises the
    original exception unchanged so callers keep their typed errors.
    """
    if attempts < 1:
        raise ValueError("attempts must be >= 1")
    delay = backoff
    for attempt in range(attempts):
        try:
            return reader(path)
        except retry_on:
            if attempt == attempts - 1:
                raise
            time.sleep(delay)
            delay *= 2
    raise AssertionError("unreachable")  # pragma: no cover
