"""TCN end-to-end forecaster (Bai et al., 2018).

The paper's second end-to-end baseline: dilated causal convolutions with
residual connections; the representation at the final timestep feeds a
linear head that emits the whole horizon at once.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..nn import Tensor
from .base import EndToEndForecaster

__all__ = ["TCNForecaster"]


class TCNForecaster(EndToEndForecaster):
    """Causal TCN + linear horizon head, trained end-to-end."""

    name = "TCN"

    def __init__(self, in_channels: int, pred_len: int, d_model: int = 32,
                 depth: int = 3, kernel_size: int = 3, dropout: float = 0.1,
                 seed: int = 0):
        super().__init__(pred_len)
        rng = np.random.default_rng(seed)
        self.in_channels = in_channels
        self.tcn = nn.TCN(in_channels, [d_model] * depth, kernel_size=kernel_size,
                          dropout=dropout, rng=rng)
        self.head = nn.Linear(d_model, pred_len * in_channels, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        features = self.tcn(x.transpose(0, 2, 1))  # (B, D, L)
        last = features[:, :, -1]  # causal summary of the whole window
        out = self.head(last)
        return out.reshape(x.shape[0], self.pred_len, self.in_channels)
