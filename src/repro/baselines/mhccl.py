"""MHCCL baseline (Meng et al., AAAI 2023).

Masked Hierarchical Cluster-wise Contrastive Learning: instance embeddings
are clustered at multiple granularities; each sample is pulled toward its
cluster *prototype* at every level of the hierarchy (an InfoNCE over
prototypes), on top of a standard augmented-view instance contrast.
Upper levels use fewer clusters, providing coarse-to-fine semantic
structure.

Simplification vs the released code: two k-means levels stand in for the
full bottom-up hierarchy with mask-and-refresh; prototypes are recomputed
every epoch and batch samples are assigned to the nearest prototype on the
fly (so the loss needs no global sample indices).
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..augmentations import jitter, scaling
from ..data.datasets import ForecastingWindows
from ..nn import Tensor
from ..nn import functional as F
from .base import ConvEncoder, SSLBaseline
from .clustering import assign_clusters, kmeans

__all__ = ["MHCCL"]


class MHCCL(SSLBaseline):
    """MHCCL: hierarchical prototype contrast + instance contrast."""

    name = "MHCCL"

    def __init__(self, in_channels: int, d_model: int = 32, depth: int = 3,
                 cluster_sizes: tuple[int, ...] = (8, 3), temperature: float = 0.5,
                 prototype_weight: float = 1.0, seed: int = 0):
        super().__init__()
        rng = np.random.default_rng(seed)
        self.cluster_sizes = tuple(cluster_sizes)
        self.temperature = temperature
        self.prototype_weight = prototype_weight
        self.encoder = ConvEncoder(in_channels, d_model=d_model, depth=depth, rng=rng)
        self._prototypes: list[np.ndarray] = []

    def features(self, x: np.ndarray) -> Tensor:
        return self.encoder(Tensor(np.asarray(x, dtype=np.float32)))

    def prepare_epoch(self, data, rng: np.random.Generator) -> None:
        """Recompute the prototype hierarchy on current embeddings."""
        samples = self._materialise(data)
        embeddings = self.encode(samples)[1]
        self._prototypes = []
        level_points = embeddings
        for k in self.cluster_sizes:
            centroids, assignments = kmeans(level_points, k, rng=rng)
            self._prototypes.append(centroids)
            level_points = centroids  # next level clusters the prototypes

    @staticmethod
    def _materialise(data, cap: int = 512) -> np.ndarray:
        if isinstance(data, ForecastingWindows):
            indices = np.arange(min(len(data), cap))
            x, __ = data.batch(indices)
            return x
        samples = np.asarray(data)
        return samples[:cap]

    def _prototype_loss(self, embeddings: Tensor) -> Tensor:
        total: Tensor | None = None
        for centroids in self._prototypes:
            assignment = assign_clusters(embeddings.data, centroids)
            logits = F.normalize(embeddings, axis=-1) @ Tensor(
                centroids / (np.linalg.norm(centroids, axis=1, keepdims=True) + 1e-8)
            ).transpose() / self.temperature
            term = nn.cross_entropy(logits, assignment)
            total = term if total is None else total + term
        if total is None:
            return Tensor(np.zeros((), dtype=np.float32))
        return total / len(self._prototypes)

    def loss(self, x: np.ndarray, rng: np.random.Generator) -> Tensor:
        view1 = scaling(jitter(x, rng, sigma=0.1), rng, sigma=0.2)
        view2 = scaling(jitter(x, rng, sigma=0.1), rng, sigma=0.2)
        h1 = self.features(view1).max(axis=1)
        h2 = self.features(view2).max(axis=1)
        instance_term = nn.nt_xent_loss(h1, h2, temperature=self.temperature)
        if not self._prototypes:
            return instance_term
        prototype_term = self._prototype_loss(h1) + self._prototype_loss(h2)
        return instance_term + self.prototype_weight * prototype_term * 0.5
