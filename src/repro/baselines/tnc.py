"""TNC baseline (Tonekaboni et al., ICLR 2021).

Temporal Neighborhood Coding: representations of temporally-close windows
should be distinguishable from distant ones.  A bilinear discriminator is
trained to classify (anchor, neighbour) pairs as positive and (anchor,
distant) pairs as negative, with Positive-Unlabeled weighting to soften the
distant pairs (which may in truth be similar — the sampling-bias problem
the TimeDRL paper sidesteps by dropping negatives entirely).

Simplification vs the released code: the neighbourhood radius is a fixed
fraction of the window instead of being chosen per-dataset with the ADF
test; the PU weighting and bilinear discriminator are as published.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..nn import Tensor
from .base import ConvEncoder, SSLBaseline

__all__ = ["TNC"]


class TNC(SSLBaseline):
    """TNC: neighbourhood discrimination with PU learning."""

    name = "TNC"

    def __init__(self, in_channels: int, d_model: int = 32, depth: int = 3,
                 subwindow: int = 16, pu_weight: float = 0.2, seed: int = 0):
        super().__init__()
        rng = np.random.default_rng(seed)
        if subwindow < 2:
            raise ValueError("subwindow must be >= 2")
        self.subwindow = subwindow
        self.pu_weight = pu_weight
        self.encoder = ConvEncoder(in_channels, d_model=d_model, depth=depth, rng=rng)
        self.discriminator = nn.Parameter(
            (rng.standard_normal((d_model, d_model)) * 0.05).astype(np.float32))

    def features(self, x: np.ndarray) -> Tensor:
        return self.encoder(Tensor(np.asarray(x, dtype=np.float32)))

    def _embed_span(self, x: np.ndarray, starts: np.ndarray) -> Tensor:
        """Encode the subwindow starting at ``starts[i]`` for each sample."""
        spans = np.stack([x[i, s: s + self.subwindow] for i, s in enumerate(starts)])
        return self.features(spans).mean(axis=1)

    def loss(self, x: np.ndarray, rng: np.random.Generator) -> Tensor:
        batch, length, __ = x.shape
        w = min(self.subwindow, max(length // 4, 2))
        self_subwindow = self.subwindow
        self.subwindow = w  # adapt to short windows
        try:
            radius = max(w // 2, 1)
            anchor_starts = rng.integers(radius, max(length - w - radius, radius + 1),
                                         size=batch)
            neighbour_starts = np.clip(
                anchor_starts + rng.integers(-radius, radius + 1, size=batch),
                0, length - w)
            distant_starts = (anchor_starts + length // 2) % (length - w + 1)

            anchors = self._embed_span(x, anchor_starts)
            neighbours = self._embed_span(x, neighbour_starts)
            distants = self._embed_span(x, distant_starts)

            pos_logits = ((anchors @ self.discriminator) * neighbours).sum(axis=-1)
            neg_logits = ((anchors @ self.discriminator) * distants).sum(axis=-1)
            ones = np.ones(batch, dtype=np.float32)
            positive_term = nn.binary_cross_entropy_with_logits(pos_logits, ones)
            # PU learning: distant pairs are *unlabeled* — treat them as
            # negative with weight (1-w) and positive with weight w.
            unlabeled_neg = nn.binary_cross_entropy_with_logits(neg_logits, ones * 0.0)
            unlabeled_pos = nn.binary_cross_entropy_with_logits(neg_logits, ones)
            return positive_term + (1 - self.pu_weight) * unlabeled_neg \
                + self.pu_weight * unlabeled_pos
        finally:
            self.subwindow = self_subwindow
