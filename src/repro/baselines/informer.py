"""Informer-style end-to-end forecaster (Zhou et al., AAAI 2021).

One of the paper's two end-to-end (non-SSL) forecasting baselines.

Substitution note (see DESIGN.md): the published Informer's contributions —
ProbSparse attention and distilling — exist to make attention *cheaper* at
long sequence lengths.  At this reproduction's window lengths full
attention is exact and affordable, so the model here is a Transformer
encoder with full attention plus Informer's one-shot linear generative
decoder.  Relative accuracy against representation-learning methods (what
Table III measures) is preserved; wall-clock asymptotics are not exercised.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..nn import Tensor
from .base import EndToEndForecaster

__all__ = ["InformerForecaster"]


class InformerForecaster(EndToEndForecaster):
    """Transformer encoder + one-shot linear decoder, trained end-to-end."""

    name = "Informer"

    def __init__(self, in_channels: int, seq_len: int, pred_len: int,
                 d_model: int = 32, num_heads: int = 4, num_layers: int = 2,
                 dropout: float = 0.1, seed: int = 0):
        super().__init__(pred_len)
        rng = np.random.default_rng(seed)
        self.in_channels = in_channels
        self.embed = nn.Linear(in_channels, d_model, rng=rng)
        self.positional = nn.LearnablePositionalEncoding(seq_len, d_model, rng=rng)
        self.encoder = nn.TransformerEncoder(d_model, num_heads, num_layers,
                                             dropout=dropout, rng=rng)
        self.head = nn.Linear(d_model, pred_len * in_channels, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        hidden = self.encoder(self.positional(self.embed(x)))
        summary = hidden.mean(axis=1)  # generative-style one-shot decoding
        out = self.head(summary)
        return out.reshape(x.shape[0], self.pred_len, self.in_channels)
