"""``repro.baselines`` — every comparison method from Tables III–V,
re-implemented on the ``repro.nn`` substrate.

Forecasting (Table III/IV): :class:`SimTS`, :class:`TS2Vec`, :class:`TNC`,
:class:`CoST` (representation learning) and :class:`InformerForecaster`,
:class:`TCNForecaster` (end-to-end).

Classification (Table V): :class:`MHCCL`, :class:`CCL`, :class:`SimCLR`,
:class:`BYOL`, :class:`TS2Vec`, :class:`TSTCC`, :class:`TLoss`.
"""

from .base import ConvEncoder, EndToEndForecaster, FitConfig, SSLBaseline
from .byol import BYOL
from .ccl import CCL
from .clustering import assign_clusters, kmeans
from .cost import CoST
from .informer import InformerForecaster
from .mhccl import MHCCL
from .simclr import SimCLR
from .simts import SimTS
from .tcn_forecaster import TCNForecaster
from .tloss import TLoss
from .tnc import TNC
from .ts2vec import TS2Vec
from .tstcc import TSTCC

FORECASTING_SSL_BASELINES = {
    "SimTS": SimTS,
    "TS2Vec": TS2Vec,
    "TNC": TNC,
    "CoST": CoST,
}

END_TO_END_FORECASTERS = {
    "Informer": InformerForecaster,
    "TCN": TCNForecaster,
}

CLASSIFICATION_BASELINES = {
    "MHCCL": MHCCL,
    "CCL": CCL,
    "SimCLR": SimCLR,
    "BYOL": BYOL,
    "TS2Vec": TS2Vec,
    "TS-TCC": TSTCC,
    "T-Loss": TLoss,
}

__all__ = [
    "FitConfig", "SSLBaseline", "EndToEndForecaster", "ConvEncoder",
    "SimTS", "TS2Vec", "TNC", "CoST", "InformerForecaster", "TCNForecaster",
    "MHCCL", "CCL", "SimCLR", "BYOL", "TSTCC", "TLoss",
    "kmeans", "assign_clusters",
    "FORECASTING_SSL_BASELINES", "END_TO_END_FORECASTERS",
    "CLASSIFICATION_BASELINES",
]
