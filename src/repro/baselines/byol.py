"""BYOL baseline (Grill et al., NeurIPS 2020), adapted to time-series.

Negative-free bootstrap: an *online* network (encoder + projector +
predictor) learns to predict the projection of an exponential-moving-
average *target* network on a differently-augmented view.  The target is
updated after every optimizer step via the :meth:`post_step` hook.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..augmentations import jitter, scaling
from ..nn import Tensor
from ..nn import functional as F
from .base import ConvEncoder, SSLBaseline

__all__ = ["BYOL"]


class BYOL(SSLBaseline):
    """BYOL: online network chases an EMA target network."""

    name = "BYOL"

    def __init__(self, in_channels: int, d_model: int = 32, depth: int = 3,
                 projection_dim: int = 16, ema_decay: float = 0.99, seed: int = 0):
        super().__init__()
        rng = np.random.default_rng(seed)
        self.ema_decay = ema_decay
        self.encoder = ConvEncoder(in_channels, d_model=d_model, depth=depth, rng=rng)
        self.projector = nn.Sequential(
            nn.Linear(d_model, projection_dim, rng=rng), nn.ReLU(),
            nn.Linear(projection_dim, projection_dim, rng=rng))
        self.predictor = nn.Sequential(
            nn.Linear(projection_dim, projection_dim, rng=rng), nn.ReLU(),
            nn.Linear(projection_dim, projection_dim, rng=rng))
        # Target network: structural copy, updated only via EMA.
        self.target_encoder = ConvEncoder(in_channels, d_model=d_model, depth=depth,
                                          rng=np.random.default_rng(seed))
        self.target_projector = nn.Sequential(
            nn.Linear(d_model, projection_dim, rng=np.random.default_rng(seed + 1)),
            nn.ReLU(),
            nn.Linear(projection_dim, projection_dim, rng=np.random.default_rng(seed + 2)))
        self._sync_target(decay=0.0)

    # The online encoder is the representation used for probing.
    def features(self, x: np.ndarray) -> Tensor:
        return self.encoder(Tensor(np.asarray(x, dtype=np.float32)))

    def parameters(self):
        """Only online-network parameters are optimised; the target follows
        by EMA."""
        online = (self.encoder.parameters() + self.projector.parameters()
                  + self.predictor.parameters())
        return online

    def _sync_target(self, decay: float) -> None:
        pairs = [
            (self.encoder, self.target_encoder),
            (self.projector, self.target_projector),
        ]
        for online, target in pairs:
            for (__, p_online), (__, p_target) in zip(online.named_parameters(),
                                                      target.named_parameters()):
                p_target.data[...] = decay * p_target.data + (1 - decay) * p_online.data

    def post_step(self) -> None:
        self._sync_target(self.ema_decay)

    def _branch_loss(self, online_view: np.ndarray, target_view: np.ndarray) -> Tensor:
        online = self.predictor(self.projector(self.features(online_view).max(axis=1)))
        with nn.no_grad():
            target = self.target_projector(
                self.target_encoder(Tensor(target_view)).max(axis=1))
        return -F.cosine_similarity(online, Tensor(target.data), axis=-1).mean()

    def loss(self, x: np.ndarray, rng: np.random.Generator) -> Tensor:
        view1 = scaling(jitter(x, rng, sigma=0.1), rng, sigma=0.2)
        view2 = scaling(jitter(x, rng, sigma=0.1), rng, sigma=0.2)
        return self._branch_loss(view1, view2) + self._branch_loss(view2, view1)
