"""CCL baseline (Sharma et al., FG 2020).

Clustering-based Contrastive Learning: k-means pseudo-labels computed on
the current embeddings turn representation learning into a classification
problem — a linear head is trained to predict each sample's cluster,
sharpening discriminative structure.  Pseudo-labels are refreshed every
epoch.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..data.datasets import ForecastingWindows
from ..nn import Tensor
from .base import ConvEncoder, SSLBaseline
from .clustering import assign_clusters, kmeans

__all__ = ["CCL"]


class CCL(SSLBaseline):
    """CCL: iterative cluster-assignment prediction."""

    name = "CCL"

    def __init__(self, in_channels: int, d_model: int = 32, depth: int = 3,
                 n_clusters: int = 8, seed: int = 0):
        super().__init__()
        rng = np.random.default_rng(seed)
        if n_clusters < 2:
            raise ValueError("n_clusters must be >= 2")
        self.n_clusters = n_clusters
        self.encoder = ConvEncoder(in_channels, d_model=d_model, depth=depth, rng=rng)
        self.classifier = nn.Linear(d_model, n_clusters, rng=rng)
        self._centroids: np.ndarray | None = None

    def features(self, x: np.ndarray) -> Tensor:
        return self.encoder(Tensor(np.asarray(x, dtype=np.float32)))

    def prepare_epoch(self, data, rng: np.random.Generator) -> None:
        samples = self._materialise(data)
        embeddings = self.encode(samples)[1]
        self._centroids, __ = kmeans(embeddings, self.n_clusters, rng=rng)

    @staticmethod
    def _materialise(data, cap: int = 512) -> np.ndarray:
        if isinstance(data, ForecastingWindows):
            indices = np.arange(min(len(data), cap))
            x, __ = data.batch(indices)
            return x
        samples = np.asarray(data)
        return samples[:cap]

    def loss(self, x: np.ndarray, rng: np.random.Generator) -> Tensor:
        embeddings = self.features(x).max(axis=1)
        if self._centroids is None:
            # First batches before any clustering: entropy-style warmup via
            # self-prediction of a random projection is unnecessary — just
            # cluster this batch.
            self._centroids, __ = kmeans(embeddings.data, self.n_clusters, rng=rng)
        pseudo_labels = assign_clusters(embeddings.data, self._centroids)
        return nn.cross_entropy(self.classifier(embeddings), pseudo_labels)
