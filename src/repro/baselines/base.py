"""Common interface and shared machinery for the baseline methods.

Every baseline in the paper's Tables III–V is re-implemented on the
``repro.nn`` substrate behind one of two interfaces:

* :class:`SSLBaseline` — self-supervised representation learners
  (TS2Vec, SimTS, TNC, CoST, MHCCL, CCL, SimCLR, BYOL, TS-TCC, T-Loss):
  ``fit`` pre-trains on unlabeled data; ``encode`` exposes frozen
  ``(timestamp, instance)`` features for the linear probes.
* :class:`EndToEndForecaster` — supervised forecasters (Informer, TCN):
  ``fit`` trains on (window, horizon) pairs; ``predict`` forecasts.

Both speak the unified inference API (``repro.serve.api.InferenceAPI``):
SSL learners implement ``encode`` and reject ``predict`` (no predictive
head), end-to-end forecasters implement ``predict`` and reject ``encode``
(no embedding space worth serving).  The pre-redesign method names
(``timestamp_embeddings`` / ``instance_embeddings`` /
``forecast_features``) survive as thin deprecation shims.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from .. import nn
from ..data.datasets import ForecastingData, ForecastingWindows
from ..data.loader import batch_indices
from ..evaluation import metrics
from ..nn import Tensor
from ..serve.api import InferenceUnsupported
from ..utils.deprecation import warn_deprecated

__all__ = ["FitConfig", "SSLBaseline", "EndToEndForecaster", "ConvEncoder"]


@dataclass
class FitConfig:
    """Optimisation settings shared by every baseline's ``fit``."""

    epochs: int = 5
    batch_size: int = 32
    learning_rate: float = 1e-3
    weight_decay: float = 1e-4
    grad_clip: float = 5.0
    max_batches_per_epoch: int | None = None
    seed: int = 0


class ConvEncoder(nn.Module):
    """Dilated 1-D convolutional encoder shared by the conv-based baselines
    (TS2Vec, SimTS, CoST, TS-TCC, SimCLR, BYOL, CCL, MHCCL use variants of
    exactly this family in their released code).

    Maps ``(B, T, C)`` to per-timestep representations ``(B, T, D)``; the
    instance representation is a max-pool over time (TS2Vec convention).
    """

    def __init__(self, in_channels: int, d_model: int = 32, depth: int = 3,
                 kernel_size: int = 3, dropout: float = 0.1, causal: bool = False,
                 rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng or np.random.default_rng()
        self.d_model = d_model
        self.input_proj = nn.Linear(in_channels, d_model, rng=rng)
        blocks = []
        for level in range(depth):
            dilation = 2**level
            if causal:
                conv = nn.CausalConv1d(d_model, d_model, kernel_size,
                                       dilation=dilation, rng=rng)
            else:
                pad = (kernel_size - 1) * dilation // 2
                conv = nn.Conv1d(d_model, d_model, kernel_size, padding=pad,
                                 dilation=dilation, rng=rng)
            blocks.append(conv)
        self.blocks = nn.ModuleList(blocks)
        self.dropout = nn.Dropout(dropout, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        hidden = self.input_proj(x).transpose(0, 2, 1)  # (B, D, T)
        for block in self.blocks:
            hidden = self.dropout(block(hidden).relu()) + hidden
        return hidden.transpose(0, 2, 1)  # (B, T, D)

    def instance(self, per_timestep: Tensor) -> Tensor:
        """Max-pool over time (TS2Vec's instance-level readout)."""
        return per_timestep.max(axis=1)


class SSLBaseline(nn.Module):
    """Base class for self-supervised baselines.

    Subclasses implement :meth:`loss` (one mini-batch of raw windows or
    samples ``(B, T, C)`` to a scalar Tensor) and :meth:`features`
    (``(B, T, C)`` ndarray to per-timestep Tensor ``(B, T, D)``, with
    gradients — it is also the training-time representation).  The
    public, deterministic :meth:`encode` is derived from it.
    """

    name = "base"

    def __init__(self):
        super().__init__()
        self.fit_seconds: float = 0.0

    # -- to be implemented by subclasses --------------------------------
    def loss(self, x: np.ndarray, rng: np.random.Generator) -> Tensor:
        raise NotImplementedError

    def features(self, x: np.ndarray) -> Tensor:
        """Per-timestep representation Tensor ``(B, T, D)`` (with grads)."""
        raise NotImplementedError

    def prepare_epoch(self, data, rng: np.random.Generator) -> None:
        """Hook run before each epoch (clustering baselines recompute
        pseudo-labels here)."""

    def post_step(self) -> None:
        """Hook run after each optimizer step (BYOL updates its EMA target
        network here)."""

    # -- shared training loop --------------------------------------------
    def fit(self, data, config: FitConfig | None = None) -> "SSLBaseline":
        """Pre-train on unlabeled windows/samples.

        ``data`` is a :class:`ForecastingWindows` split or an ndarray of
        samples ``(N, T, C)``.
        """
        config = config or FitConfig()
        self.train()
        optimizer = nn.AdamW(self.parameters(), lr=config.learning_rate,
                             weight_decay=config.weight_decay)
        rng = np.random.default_rng(config.seed)
        start = time.perf_counter()
        for __ in range(config.epochs):
            self.prepare_epoch(data, rng)
            count = 0
            for x in _iterate(data, config.batch_size, rng):
                optimizer.zero_grad()
                loss = self.loss(x, rng)
                loss.backward()
                if config.grad_clip:
                    nn.clip_grad_norm(self.parameters(), config.grad_clip)
                optimizer.step()
                self.post_step()
                count += 1
                if config.max_batches_per_epoch and count >= config.max_batches_per_epoch:
                    break
        self.fit_seconds = time.perf_counter() - start
        self.eval()
        return self

    # -- unified inference API (repro.serve.api.InferenceAPI) -------------
    def _feature_hook(self, x: np.ndarray) -> Tensor:
        """Resolve the per-timestep representation hook.

        Pre-redesign subclasses overrode ``encode`` with the Tensor-valued
        hook that is now called ``features``; detect such overrides so
        third-party baselines keep working through the deprecation window.
        """
        if type(self).features is not SSLBaseline.features:
            return self.features(x)
        if type(self).encode is not SSLBaseline.encode:
            return self.encode(x)  # legacy subclass: encode IS the hook
        return self.features(x)  # raises NotImplementedError

    def encode(self, x: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Raw batch ``(B, T, C)`` to ``(timestamp_emb, instance_emb)``.

        One deterministic pass (eval mode, no grad): the timestamp
        embedding is the subclass's :meth:`features` output, the instance
        embedding its max-pool over time (TS2Vec convention, shared by
        every conv-based baseline here).
        """
        was_training = self.training
        self.eval()
        try:
            with nn.no_grad():
                z = self._feature_hook(x)
                return z.data, z.max(axis=1).data
        finally:
            self.train(was_training)

    def predict(self, x: np.ndarray) -> np.ndarray:
        """SSL baselines are encoder-only; they have no predictive head."""
        raise InferenceUnsupported(
            f"{type(self).__name__} is an encoder-only SSL baseline; "
            "use encode() and attach a probe")

    # -- legacy names (deprecation shims) ---------------------------------
    def timestamp_embeddings(self, x: np.ndarray) -> np.ndarray:
        """Deprecated: use ``encode(x)[0]``."""
        warn_deprecated(f"{type(self).__name__}.timestamp_embeddings",
                        "encode(x)[0]")
        return self._encode_via_hook(x)[0]

    def instance_embeddings(self, x: np.ndarray) -> np.ndarray:
        """Deprecated: use ``encode(x)[1]``."""
        warn_deprecated(f"{type(self).__name__}.instance_embeddings",
                        "encode(x)[1]")
        return self._encode_via_hook(x)[1]

    def forecast_features(self, x: np.ndarray) -> np.ndarray:
        """Deprecated: flatten ``encode(x)[0]`` instead."""
        warn_deprecated(f"{type(self).__name__}.forecast_features",
                        "encode(x)[0].reshape(len(x), -1)")
        return self._encode_via_hook(x)[0].reshape(x.shape[0], -1)

    def _encode_via_hook(self, x: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Shim path that works even on legacy subclasses overriding
        ``encode`` with the old Tensor-valued hook."""
        was_training = self.training
        self.eval()
        try:
            with nn.no_grad():
                z = self._feature_hook(x)
                return z.data, z.max(axis=1).data
        finally:
            self.train(was_training)


class EndToEndForecaster(nn.Module):
    """Base class for supervised forecasters (Informer-style, TCN).

    Subclasses implement :meth:`forward` mapping a normalised window Tensor
    ``(B, L, C)`` to a horizon prediction ``(B, H, C)``.
    """

    name = "base-e2e"
    _EPS = 1e-5

    def __init__(self, pred_len: int):
        super().__init__()
        self.pred_len = pred_len
        self.fit_seconds: float = 0.0

    def fit(self, data: ForecastingData, config: FitConfig | None = None
            ) -> "EndToEndForecaster":
        config = config or FitConfig()
        self.train()
        optimizer = nn.AdamW(self.parameters(), lr=config.learning_rate,
                             weight_decay=config.weight_decay)
        rng = np.random.default_rng(config.seed)
        start = time.perf_counter()
        for __ in range(config.epochs):
            count = 0
            for indices in batch_indices(len(data.train), config.batch_size, rng):
                x, y = data.train.batch(indices)
                mean, std = self._stats(x)
                optimizer.zero_grad()
                pred = self.forward(Tensor((x - mean) / std))
                loss = nn.mse_loss(pred, Tensor((y - mean) / std))
                loss.backward()
                if config.grad_clip:
                    nn.clip_grad_norm(self.parameters(), config.grad_clip)
                optimizer.step()
                count += 1
                if config.max_batches_per_epoch and count >= config.max_batches_per_epoch:
                    break
        self.fit_seconds = time.perf_counter() - start
        self.eval()
        return self

    def encode(self, x: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Supervised forecasters have no embedding space worth serving."""
        raise InferenceUnsupported(
            f"{type(self).__name__} is an end-to-end forecaster; use predict()")

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Forecast in the dataset's scaled space (de-normalised).

        Forces eval mode for the forward pass (and restores the previous
        mode after): without this, calling ``predict`` before or during
        ``fit`` sampled dropout at inference — Informer's attention
        dropout and the TCN's residual dropout made forecasts stochastic.
        """
        mean, std = self._stats(x)
        was_training = self.training
        self.eval()
        try:
            with nn.no_grad():
                pred = self.forward(Tensor((x - mean) / std)).data
        finally:
            self.train(was_training)
        return pred * std + mean

    def evaluate(self, data: ForecastingData, chunk: int = 256):
        """Test-set MSE/MAE, mirroring the representation-probe metric."""
        preds, truth = [], []
        for start in range(0, len(data.test), chunk):
            indices = np.arange(start, min(start + chunk, len(data.test)))
            x, y = data.test.batch(indices)
            preds.append(self.predict(x))
            truth.append(y)
        y_pred, y_true = np.concatenate(preds), np.concatenate(truth)
        return metrics.mse(y_true, y_pred), metrics.mae(y_true, y_pred)

    def _stats(self, x: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        mean = x.mean(axis=1, keepdims=True)
        std = x.std(axis=1, keepdims=True) + self._EPS
        return mean, std


def _iterate(data, batch_size: int, rng: np.random.Generator):
    if isinstance(data, ForecastingWindows):
        for indices in batch_indices(len(data), batch_size, rng):
            x, __ = data.batch(indices)
            yield x
    else:
        samples = np.asarray(data)
        for indices in batch_indices(len(samples), batch_size, rng):
            yield samples[indices]
