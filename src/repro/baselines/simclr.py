"""SimCLR baseline (Chen et al., ICML 2020), adapted to time-series.

Two augmented views of each sample (jitter + scaling, the standard
time-series policy) are pushed together while every other sample in the
mini-batch serves as a negative, via the NT-Xent loss on a projection
head's outputs.  Probing uses the encoder output (projection head dropped),
as in the original paper.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..augmentations import jitter, scaling
from ..nn import Tensor
from .base import ConvEncoder, SSLBaseline

__all__ = ["SimCLR"]


class SimCLR(SSLBaseline):
    """SimCLR: augmented-view NT-Xent contrast with in-batch negatives."""

    name = "SimCLR"

    def __init__(self, in_channels: int, d_model: int = 32, depth: int = 3,
                 projection_dim: int = 16, temperature: float = 0.5, seed: int = 0):
        super().__init__()
        rng = np.random.default_rng(seed)
        self.temperature = temperature
        self.encoder = ConvEncoder(in_channels, d_model=d_model, depth=depth, rng=rng)
        self.projector = nn.Sequential(
            nn.Linear(d_model, d_model, rng=rng),
            nn.ReLU(),
            nn.Linear(d_model, projection_dim, rng=rng),
        )

    def features(self, x: np.ndarray) -> Tensor:
        return self.encoder(Tensor(np.asarray(x, dtype=np.float32)))

    def loss(self, x: np.ndarray, rng: np.random.Generator) -> Tensor:
        view1 = scaling(jitter(x, rng, sigma=0.1), rng, sigma=0.2)
        view2 = scaling(jitter(x, rng, sigma=0.1), rng, sigma=0.2)
        h1 = self.features(view1).max(axis=1)
        h2 = self.features(view2).max(axis=1)
        return nn.nt_xent_loss(self.projector(h1), self.projector(h2),
                               temperature=self.temperature)
