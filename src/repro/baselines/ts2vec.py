"""TS2Vec baseline (Yue et al., AAAI 2022).

The first "universal" time-series representation framework and the paper's
main point of comparison in both tables.  A dilated convolutional encoder
is trained with the hierarchical contrastive loss: instance-wise and
temporal contrast computed at multiple time scales (max-pooling between
levels).  Views are created with *random timestamp masking* — one of the
augmentations whose inductive bias TimeDRL's Table VI quantifies.

Simplification vs the released code: views come from input-level binomial
masking of the whole window rather than overlapping random crops; the
hierarchical loss and encoder family are as published.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..augmentations import masking
from ..nn import Tensor
from .base import ConvEncoder, SSLBaseline

__all__ = ["TS2Vec"]


class TS2Vec(SSLBaseline):
    """TS2Vec: hierarchical contrastive learning over masked views."""

    name = "TS2Vec"

    def __init__(self, in_channels: int, d_model: int = 32, depth: int = 3,
                 mask_ratio: float = 0.15, alpha: float = 0.5, seed: int = 0):
        super().__init__()
        rng = np.random.default_rng(seed)
        self.mask_ratio = mask_ratio
        self.alpha = alpha
        self.encoder = ConvEncoder(in_channels, d_model=d_model, depth=depth, rng=rng)

    def features(self, x: np.ndarray) -> Tensor:
        return self.encoder(Tensor(np.asarray(x, dtype=np.float32)))

    def loss(self, x: np.ndarray, rng: np.random.Generator) -> Tensor:
        view1 = masking(x, rng, ratio=self.mask_ratio)
        view2 = masking(x, rng, ratio=self.mask_ratio)
        z1 = self.features(view1)
        z2 = self.features(view2)
        return nn.hierarchical_contrastive_loss(z1, z2, alpha=self.alpha, max_depth=4)
