"""TS-TCC baseline (Eldele et al., IJCAI 2021).

Time-Series representation learning via Temporal and Contextual
Contrasting: a *weak* (jitter + scale) and a *strong* (permutation +
jitter) augmented view are encoded; a **temporal contrasting** head
predicts each view's future representations from the *other* view's past
context (cross-view prediction), and a **contextual contrasting** NT-Xent
pulls the two context vectors of the same sample together.

Simplification vs the released code: the autoregressive context is a mean
over the past half (the released code uses a Transformer AR module); the
cross-view prediction and both loss terms are as published.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..augmentations import strong_augment, weak_augment
from ..nn import Tensor
from ..nn import functional as F
from .base import ConvEncoder, SSLBaseline

__all__ = ["TSTCC"]


class TSTCC(SSLBaseline):
    """TS-TCC: cross-view temporal prediction + contextual NT-Xent."""

    name = "TS-TCC"

    def __init__(self, in_channels: int, d_model: int = 32, depth: int = 3,
                 context_weight: float = 1.0, seed: int = 0):
        super().__init__()
        rng = np.random.default_rng(seed)
        self.context_weight = context_weight
        self.encoder = ConvEncoder(in_channels, d_model=d_model, depth=depth, rng=rng)
        self.future_predictor = nn.Linear(d_model, d_model, rng=rng)
        self.context_projector = nn.Sequential(
            nn.Linear(d_model, d_model, rng=rng), nn.ReLU(),
            nn.Linear(d_model, d_model // 2, rng=rng))

    def features(self, x: np.ndarray) -> Tensor:
        return self.encoder(Tensor(np.asarray(x, dtype=np.float32)))

    @staticmethod
    def _context_and_future(z: Tensor) -> tuple[Tensor, Tensor]:
        split = max(z.shape[1] // 2, 1)
        context = z[:, :split, :].mean(axis=1)
        future = z[:, split:, :].mean(axis=1)
        return context, future

    def loss(self, x: np.ndarray, rng: np.random.Generator) -> Tensor:
        z_weak = self.features(weak_augment(x, rng))
        z_strong = self.features(strong_augment(x, rng))
        c_weak, f_weak = self._context_and_future(z_weak)
        c_strong, f_strong = self._context_and_future(z_strong)
        # Temporal contrasting: each view's context predicts the *other*
        # view's future representation.
        temporal = (
            -F.cosine_similarity(self.future_predictor(c_weak),
                                 f_strong.stop_gradient(), axis=-1).mean()
            - F.cosine_similarity(self.future_predictor(c_strong),
                                  f_weak.stop_gradient(), axis=-1).mean()
        )
        # Contextual contrasting: NT-Xent between the two contexts.
        contextual = nn.nt_xent_loss(self.context_projector(c_weak),
                                     self.context_projector(c_strong))
        return temporal + self.context_weight * contextual
