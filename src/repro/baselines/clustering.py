"""Lightweight k-means, the clustering substrate for MHCCL and CCL."""

from __future__ import annotations

import numpy as np

__all__ = ["kmeans", "assign_clusters"]


def kmeans(points: np.ndarray, k: int, iters: int = 10,
           rng: np.random.Generator | None = None) -> tuple[np.ndarray, np.ndarray]:
    """Lloyd's algorithm with k-means++-style seeding.

    Returns ``(centroids (k, D), assignments (N,))``.  Empty clusters are
    re-seeded from the point farthest from its centroid.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    points = np.asarray(points, dtype=np.float64)
    n = len(points)
    if n == 0:
        raise ValueError("cannot cluster zero points")
    k = min(k, n)
    rng = rng or np.random.default_rng()

    # k-means++ seeding.
    centroids = np.empty((k, points.shape[1]))
    centroids[0] = points[rng.integers(n)]
    closest_sq = _sq_distances(points, centroids[:1]).min(axis=1)
    for index in range(1, k):
        total = closest_sq.sum()
        if total <= 0:
            centroids[index] = points[rng.integers(n)]
        else:
            probabilities = closest_sq / total
            centroids[index] = points[rng.choice(n, p=probabilities)]
        closest_sq = np.minimum(
            closest_sq, _sq_distances(points, centroids[index: index + 1])[:, 0])

    assignments = np.zeros(n, dtype=np.int64)
    for __ in range(iters):
        distances = _sq_distances(points, centroids)
        assignments = distances.argmin(axis=1)
        for cluster in range(k):
            members = points[assignments == cluster]
            if len(members):
                centroids[cluster] = members.mean(axis=0)
            else:  # re-seed an empty cluster at the worst-fit point
                worst = distances.min(axis=1).argmax()
                centroids[cluster] = points[worst]
    return centroids.astype(np.float32), assignments


def assign_clusters(points: np.ndarray, centroids: np.ndarray) -> np.ndarray:
    """Nearest-centroid assignment for new points."""
    return _sq_distances(np.asarray(points, dtype=np.float64),
                         np.asarray(centroids, dtype=np.float64)).argmin(axis=1)


def _sq_distances(points: np.ndarray, centroids: np.ndarray) -> np.ndarray:
    return ((points[:, None, :] - centroids[None, :, :]) ** 2).sum(axis=2)
