"""SimTS baseline (Zheng et al., 2023).

Predicts the *future in latent space from the past*: the window is split at
its midpoint; a predictor maps the last past representation to the future
representations, which are aligned with negative cosine similarity under a
stop-gradient on the future branch (no negative pairs, no augmentation
assumptions) — the design the TimeDRL paper singles out as its strongest
forecasting baseline.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..nn import Tensor
from ..nn import functional as F
from .base import ConvEncoder, SSLBaseline

__all__ = ["SimTS"]


class SimTS(SSLBaseline):
    """SimTS: latent past-to-future prediction with stop-gradient."""

    name = "SimTS"

    def __init__(self, in_channels: int, d_model: int = 32, depth: int = 3,
                 seed: int = 0):
        super().__init__()
        rng = np.random.default_rng(seed)
        self.encoder = ConvEncoder(in_channels, d_model=d_model, depth=depth,
                                   causal=True, rng=rng)
        # Predictor: last past latent -> future latents (shared across steps).
        self.predictor = nn.Sequential(
            nn.Linear(d_model, d_model * 2, rng=rng),
            nn.ReLU(),
            nn.Linear(d_model * 2, d_model, rng=rng),
        )

    def features(self, x: np.ndarray) -> Tensor:
        return self.encoder(Tensor(np.asarray(x, dtype=np.float32)))

    def loss(self, x: np.ndarray, rng: np.random.Generator) -> Tensor:
        length = x.shape[1]
        if length < 4:
            raise ValueError("SimTS needs windows of at least 4 steps")
        split = length // 2
        z_past = self.features(x[:, :split])  # causal: last step summarises history
        z_future = self.features(x[:, split:])
        summary = z_past[:, -1, :]
        predicted = self.predictor(summary)  # (B, D)
        # Align the prediction with every future latent (stop-gradient on
        # the future branch, as in SimTS/SimSiam).
        future = z_future.mean(axis=1).stop_gradient()
        return -F.cosine_similarity(predicted, future, axis=-1).mean()
