"""CoST baseline (Woo et al., ICLR 2022).

Contrastive learning of disentangled Seasonal-Trend representations: a
convolutional backbone feeds two contrastive objectives — one in the *time
domain* (trend) and one in the *frequency domain* (seasonal), the latter
computed on the discrete-Fourier amplitude spectrum of the per-timestep
representations.

Simplifications vs the released code: the time-domain loss contrasts
whole-window (average-pooled) representations rather than MoCo-queue
samples, and the frequency loss contrasts mean amplitude spectra; both
domains and the augmented-view construction (scale + jitter) are as
published.  The DFT is expressed as two matmuls with fixed cos/sin bases so
gradients flow through the autograd engine.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..augmentations import jitter, scaling
from ..nn import Tensor
from .base import ConvEncoder, SSLBaseline

__all__ = ["CoST"]


class CoST(SSLBaseline):
    """CoST: time-domain (trend) + frequency-domain (seasonal) contrast."""

    name = "CoST"

    def __init__(self, in_channels: int, d_model: int = 32, depth: int = 3,
                 freq_weight: float = 0.5, seed: int = 0):
        super().__init__()
        rng = np.random.default_rng(seed)
        self.freq_weight = freq_weight
        self.encoder = ConvEncoder(in_channels, d_model=d_model, depth=depth, rng=rng)
        self._dft_cache: dict[int, tuple[Tensor, Tensor]] = {}

    def features(self, x: np.ndarray) -> Tensor:
        return self.encoder(Tensor(np.asarray(x, dtype=np.float32)))

    def _dft_bases(self, length: int) -> tuple[Tensor, Tensor]:
        if length not in self._dft_cache:
            t = np.arange(length)[:, None]
            freqs = np.arange(1, length // 2 + 1)[None, :]
            angle = 2 * np.pi * t * freqs / length
            self._dft_cache[length] = (
                Tensor(np.cos(angle).astype(np.float32)),
                Tensor(np.sin(angle).astype(np.float32)),
            )
        return self._dft_cache[length]

    def _amplitude_spectrum(self, z: Tensor) -> Tensor:
        """Mean DFT amplitude over frequencies: (B, T, D) -> (B, D)."""
        cos_base, sin_base = self._dft_bases(z.shape[1])
        z_cf = z.transpose(0, 2, 1)  # (B, D, T)
        real = z_cf @ cos_base  # (B, D, F)
        imag = z_cf @ sin_base
        amplitude = (real * real + imag * imag + 1e-8).sqrt()
        return amplitude.mean(axis=2)

    def loss(self, x: np.ndarray, rng: np.random.Generator) -> Tensor:
        view1 = jitter(scaling(x, rng, sigma=0.1), rng, sigma=0.05)
        view2 = jitter(scaling(x, rng, sigma=0.1), rng, sigma=0.05)
        z1 = self.features(view1)
        z2 = self.features(view2)
        # Trend: time-domain contrast of pooled representations.
        trend = nn.nt_xent_loss(z1.mean(axis=1), z2.mean(axis=1))
        # Seasonal: frequency-domain contrast of amplitude spectra.
        seasonal = nn.nt_xent_loss(self._amplitude_spectrum(z1),
                                   self._amplitude_spectrum(z2))
        return trend + self.freq_weight * seasonal
