"""T-Loss baseline (Franceschi et al., NeurIPS 2019).

Unsupervised scalable representation learning with a triplet loss and
*time-based negative sampling*: the anchor is a random subseries, the
positive a subseries *contained in* the anchor, and the negatives are
subseries drawn from other samples of the batch.  The encoder is a causal
dilated CNN whose instance representation is a max-pool over time.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..nn import Tensor
from .base import ConvEncoder, SSLBaseline

__all__ = ["TLoss"]


class TLoss(SSLBaseline):
    """T-Loss: triplet objective with time-based negative sampling."""

    name = "T-Loss"

    def __init__(self, in_channels: int, d_model: int = 32, depth: int = 3,
                 n_negatives: int = 4, seed: int = 0):
        super().__init__()
        rng = np.random.default_rng(seed)
        if n_negatives < 1:
            raise ValueError("n_negatives must be >= 1")
        self.n_negatives = n_negatives
        self.encoder = ConvEncoder(in_channels, d_model=d_model, depth=depth,
                                   causal=True, rng=rng)

    def features(self, x: np.ndarray) -> Tensor:
        return self.encoder(Tensor(np.asarray(x, dtype=np.float32)))

    def _embed_subseries(self, x: np.ndarray, starts: np.ndarray,
                         length: int) -> Tensor:
        spans = np.stack([x[i, s: s + length] for i, s in enumerate(starts)])
        return self.features(spans).max(axis=1)

    def loss(self, x: np.ndarray, rng: np.random.Generator) -> Tensor:
        batch, length, __ = x.shape
        if batch < 2:
            raise ValueError("T-Loss needs at least 2 samples per batch for negatives")
        anchor_len = max(length // 2, 2)
        positive_len = max(anchor_len // 2, 1)
        anchor_starts = rng.integers(0, length - anchor_len + 1, size=batch)
        # Positive: contained in the anchor span.
        offset = rng.integers(0, anchor_len - positive_len + 1, size=batch)
        positive_starts = anchor_starts + offset

        anchors = self._embed_subseries(x, anchor_starts, anchor_len)
        positives = self._embed_subseries(x, positive_starts, positive_len)

        negative_embeddings = []
        for __ in range(self.n_negatives):
            # Negatives come from *other* samples (time-based sampling).
            shuffle = (np.arange(batch) + int(rng.integers(1, batch))) % batch
            neg_starts = rng.integers(0, length - positive_len + 1, size=batch)
            negative_embeddings.append(
                self._embed_subseries(x[shuffle], neg_starts, positive_len))
        negatives = nn.stack(negative_embeddings, axis=1)  # (B, K, D)
        return nn.triplet_loss(anchors, positives, negatives)
