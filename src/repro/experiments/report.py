"""Aggregate reporting: the paper's headline improvement percentages.

The abstract's "average improvement of forecasting by 58.02% in MSE and
classification by 1.48% in accuracy" is an aggregate over Table III / V.
This module computes the same aggregates from any :class:`ResultTable`, so
a reproduction run can print its own headline numbers next to the paper's.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .tables import ResultTable

__all__ = ["ImprovementSummary", "average_error_improvement",
           "average_accuracy_improvement", "win_counts"]


@dataclass
class ImprovementSummary:
    """Aggregate comparison of one method against the best alternative."""

    method: str
    average_improvement_pct: float   # positive = method better on average
    wins: int
    rows: int

    def __str__(self) -> str:
        return (f"{self.method}: avg improvement {self.average_improvement_pct:+.2f}% "
                f"vs best alternative; best on {self.wins}/{self.rows} rows")


def average_error_improvement(table: ResultTable, method: str = "TimeDRL"
                              ) -> ImprovementSummary:
    """Paper-style aggregate for error metrics (lower is better).

    Per row: ``(best_other - method) / best_other * 100`` — how much lower
    the method's error is than the best competing method's, averaged over
    rows.  This is the construction behind the paper's 58.02% claim.
    """
    return _summarise(table, method, lower_is_better=True)


def average_accuracy_improvement(table: ResultTable, method: str = "TimeDRL"
                                 ) -> ImprovementSummary:
    """Aggregate for accuracy-like metrics (higher is better); the paper's
    1.48% classification claim."""
    return _summarise(table, method, lower_is_better=False)


def win_counts(table: ResultTable, minimise: bool = True) -> dict[str, int]:
    """How many rows each method wins."""
    counts = {column: 0 for column in table.columns}
    for row in table.rows:
        counts[table.best_column(row, minimise=minimise)] += 1
    return counts


def _summarise(table: ResultTable, method: str, lower_is_better: bool
               ) -> ImprovementSummary:
    if method not in table.columns:
        raise KeyError(f"{method!r} is not a column of {table.title!r}")
    improvements = []
    wins = 0
    for row in table.rows:
        values = table.row_values(row)
        if method not in values or len(values) < 2:
            continue
        own = values[method]
        others = [v for k, v in values.items() if k != method]
        best_other = min(others) if lower_is_better else max(others)
        if lower_is_better:
            if best_other <= 0:
                continue
            improvements.append((best_other - own) / best_other * 100.0)
            wins += own <= best_other
        else:
            if best_other <= 0:
                continue
            improvements.append((own - best_other) / best_other * 100.0)
            wins += own >= best_other
    if not improvements:
        raise ValueError("no comparable rows in table")
    return ImprovementSummary(method=method,
                              average_improvement_pct=float(np.mean(improvements)),
                              wins=wins, rows=len(improvements))
