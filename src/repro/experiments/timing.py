"""Fig. 4 driver: pre-training wall-clock comparison.

The paper compares TimeDRL (Transformer + patching) against the fast
convolutional encoders of SimTS and TS2Vec at a fixed batch size, epoch
count and sequence length, and argues the patching mechanism closes most
of the Transformer's efficiency gap.  This driver additionally times
TimeDRL *without* patching (patch_len = stride = 1) to expose exactly that
effect — the ablation DESIGN.md calls out.
"""

from __future__ import annotations

from ..baselines import FitConfig, SimTS, TS2Vec
from ..core import PretrainConfig, run_pretrain
from .forecasting import prepare_forecasting_data, timedrl_config_for
from .scale import ScalePreset, get_scale
from .tables import ResultTable

__all__ = ["TIMING_METHODS", "training_time_table"]

TIMING_METHODS = ("TimeDRL", "TimeDRL (no patching)", "SimTS", "TS2Vec")


def training_time_table(datasets: tuple[str, ...] = ("ETTh1", "Exchange"),
                        methods: tuple[str, ...] = TIMING_METHODS,
                        preset: ScalePreset | None = None,
                        seed: int = 0) -> ResultTable:
    """Pre-training seconds per method per dataset (Fig. 4)."""
    preset = preset or get_scale()
    table = ResultTable("Pre-training wall-clock (seconds)", columns=list(datasets))
    for dataset in datasets:
        prepared = prepare_forecasting_data(dataset, preset, univariate=False,
                                            seed=seed)
        __, data = next(iter(prepared["horizons"].items()))
        n_features = prepared["n_features"]
        pretrain_config = PretrainConfig(
            epochs=preset.pretrain_epochs, batch_size=preset.batch_size,
            max_batches_per_epoch=preset.max_batches, seed=seed)
        fit_config = FitConfig(
            epochs=preset.pretrain_epochs, batch_size=preset.batch_size,
            max_batches_per_epoch=preset.max_batches, seed=seed)

        for method in methods:
            if method == "TimeDRL":
                config = timedrl_config_for(n_features, preset, seed=seed)
                seconds = run_pretrain(config, data.train, pretrain_config).wall_clock_seconds
            elif method == "TimeDRL (no patching)":
                config = timedrl_config_for(n_features, preset, seed=seed,
                                            patch_len=1, stride=1)
                seconds = run_pretrain(config, data.train, pretrain_config).wall_clock_seconds
            elif method == "SimTS":
                model = SimTS(in_channels=n_features, d_model=preset.d_model,
                              seed=seed).fit(data.train, fit_config)
                seconds = model.fit_seconds
            elif method == "TS2Vec":
                model = TS2Vec(in_channels=n_features, d_model=preset.d_model,
                               seed=seed).fit(data.train, fit_config)
                seconds = model.fit_seconds
            else:
                raise KeyError(f"unknown timing method {method!r}")
            table.add(method, dataset, seconds)
    return table
