"""``repro.experiments`` — drivers that regenerate every table and figure
of the paper's evaluation section (see DESIGN.md for the index)."""

from .ablations import (
    AUGMENTATION_CHOICES,
    BACKBONE_CHOICES,
    POOLING_CHOICES,
    augmentation_ablation,
    backbone_ablation,
    lambda_sensitivity,
    pooling_ablation,
    stop_gradient_ablation,
)
from .classification import (
    CLASSIFICATION_METHODS,
    classification_table,
    prepare_classification_data,
    run_classification_method,
    timedrl_classification_config,
)
from .forecasting import (
    FORECAST_METHODS,
    forecasting_table,
    prepare_forecasting_data,
    run_forecasting_method,
    timedrl_config_for,
)
from .report import (
    ImprovementSummary,
    average_accuracy_improvement,
    average_error_improvement,
    win_counts,
)
from .scale import DEFAULT, FULL, SMOKE, ScalePreset, get_scale
from .semi_supervised import semi_supervised_classification, semi_supervised_forecasting
from .tables import ResultTable
from .timing import TIMING_METHODS, training_time_table

__all__ = [
    "ScalePreset", "SMOKE", "DEFAULT", "FULL", "get_scale",
    "ResultTable",
    "FORECAST_METHODS", "forecasting_table", "prepare_forecasting_data",
    "run_forecasting_method", "timedrl_config_for",
    "CLASSIFICATION_METHODS", "classification_table",
    "prepare_classification_data", "run_classification_method",
    "timedrl_classification_config",
    "AUGMENTATION_CHOICES", "POOLING_CHOICES", "BACKBONE_CHOICES",
    "augmentation_ablation", "pooling_ablation", "backbone_ablation",
    "stop_gradient_ablation", "lambda_sensitivity",
    "semi_supervised_forecasting", "semi_supervised_classification",
    "TIMING_METHODS", "training_time_table",
    "ImprovementSummary", "average_error_improvement",
    "average_accuracy_improvement", "win_counts",
]
