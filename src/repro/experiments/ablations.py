"""Ablation drivers: Tables VI–IX and the Fig. 6 λ sensitivity sweep.

Every ablation runs the *same* TimeDRL pipeline with exactly one
configuration knob changed, so differences are attributable to the ablated
component:

* Table VI  — ``augmentation`` ∈ {None, jitter, scaling, rotation,
  permutation, masking, cropping} on forecasting datasets;
* Table VII — ``pooling`` ∈ {cls, last, gap, all} on classification;
* Table VIII — ``backbone`` ∈ {transformer, transformer_decoder, resnet,
  tcn, lstm, bilstm} on forecasting;
* Table IX  — ``use_stop_gradient`` ∈ {True, False} on classification;
* Fig. 6    — ``lambda_weight`` sweep on one forecasting and one
  classification dataset.
"""

from __future__ import annotations

from ..core import (
    PretrainConfig,
    linear_evaluate_classification,
    linear_evaluate_forecasting,
    run_pretrain,
)
from .classification import prepare_classification_data, timedrl_classification_config
from .forecasting import prepare_forecasting_data, timedrl_config_for
from .scale import ScalePreset, get_scale
from .tables import ResultTable

__all__ = [
    "AUGMENTATION_CHOICES",
    "POOLING_CHOICES",
    "BACKBONE_CHOICES",
    "augmentation_ablation",
    "pooling_ablation",
    "backbone_ablation",
    "stop_gradient_ablation",
    "lambda_sensitivity",
]

AUGMENTATION_CHOICES = ("None", "jitter", "scaling", "rotation", "permutation",
                        "masking", "cropping")
POOLING_CHOICES = ("cls", "last", "gap", "all")
BACKBONE_CHOICES = ("transformer", "transformer_decoder", "resnet", "tcn",
                    "lstm", "bilstm")


def _forecast_mse(dataset: str, preset: ScalePreset, seed: int,
                  **config_overrides) -> float:
    """Pre-train TimeDRL with overrides; return test MSE at the first
    preset horizon (the paper's ablations report a single horizon)."""
    prepared = prepare_forecasting_data(dataset, preset, univariate=False, seed=seed)
    horizon, data = next(iter(prepared["horizons"].items()))
    config = timedrl_config_for(prepared["n_features"], preset, seed=seed,
                                **config_overrides)
    outcome = run_pretrain(config, data.train, PretrainConfig(
        epochs=preset.ablation_pretrain_epochs, batch_size=preset.batch_size,
        max_batches_per_epoch=preset.max_batches, seed=seed))
    return linear_evaluate_forecasting(outcome.model, data).mse


def _classification_acc(dataset: str, preset: ScalePreset, seed: int,
                        **config_overrides) -> float:
    data = prepare_classification_data(dataset, preset, seed)
    config = timedrl_classification_config(dataset, preset, seed=seed,
                                           **config_overrides)
    outcome = run_pretrain(config, data.x_train, PretrainConfig(
        epochs=preset.classify_pretrain_epochs, batch_size=preset.batch_size,
        max_batches_per_epoch=preset.max_batches, seed=seed))
    return linear_evaluate_classification(outcome.model, data,
                                          epochs=preset.probe_epochs, seed=seed).accuracy


def augmentation_ablation(datasets: tuple[str, ...] = ("ETTh1", "Exchange"),
                          augmentations: tuple[str, ...] = AUGMENTATION_CHOICES,
                          preset: ScalePreset | None = None,
                          seed: int = 0) -> ResultTable:
    """Table VI: applying any augmentation should *raise* MSE over None."""
    preset = preset or get_scale()
    table = ResultTable("Ablation: data augmentation (forecasting MSE)",
                        columns=list(datasets))
    for augmentation in augmentations:
        override = None if augmentation == "None" else augmentation
        for dataset in datasets:
            table.add(augmentation, dataset,
                      _forecast_mse(dataset, preset, seed, augmentation=override))
    return table


def pooling_ablation(datasets: tuple[str, ...] = ("FingerMovements", "Epilepsy"),
                     poolings: tuple[str, ...] = POOLING_CHOICES,
                     preset: ScalePreset | None = None,
                     seed: int = 0) -> ResultTable:
    """Table VII: the [CLS] strategy should beat last/GAP/all pooling."""
    preset = preset or get_scale()
    table = ResultTable("Ablation: pooling method (classification ACC %)",
                        columns=list(datasets))
    for pooling in poolings:
        for dataset in datasets:
            table.add(pooling, dataset,
                      _classification_acc(dataset, preset, seed, pooling=pooling))
    return table


def backbone_ablation(datasets: tuple[str, ...] = ("ETTh1", "Exchange"),
                      backbones: tuple[str, ...] = BACKBONE_CHOICES,
                      preset: ScalePreset | None = None,
                      seed: int = 0) -> ResultTable:
    """Table VIII: the bidirectional Transformer encoder should win."""
    preset = preset or get_scale()
    table = ResultTable("Ablation: backbone encoder (forecasting MSE)",
                        columns=list(datasets))
    for backbone in backbones:
        for dataset in datasets:
            table.add(backbone, dataset,
                      _forecast_mse(dataset, preset, seed, backbone=backbone))
    return table


def stop_gradient_ablation(datasets: tuple[str, ...] = ("FingerMovements", "Epilepsy"),
                           preset: ScalePreset | None = None,
                           seed: int = 0) -> ResultTable:
    """Table IX: removing stop-gradient should hurt (representation
    collapse in the negative-free contrastive task)."""
    preset = preset or get_scale()
    table = ResultTable("Ablation: stop gradient (classification ACC %)",
                        columns=list(datasets))
    for label, flag in (("w/ SG", True), ("w/o SG", False)):
        for dataset in datasets:
            table.add(label, dataset,
                      _classification_acc(dataset, preset, seed,
                                          use_stop_gradient=flag))
    return table


def lambda_sensitivity(forecast_dataset: str = "ETTh1",
                       classification_dataset: str = "Epilepsy",
                       lambdas: tuple[float, ...] = (0.001, 0.1, 1.0, 10.0, 1000.0),
                       preset: ScalePreset | None = None,
                       seed: int = 0) -> ResultTable:
    """Fig. 6: sweep λ of Eq. 19.

    Small λ ignores the instance-contrastive task (hurts forecasting and
    especially classification); huge λ drowns the predictive task.  Columns
    are forecasting MSE and classification accuracy.
    """
    preset = preset or get_scale()
    forecast_col = f"{forecast_dataset} MSE"
    class_col = f"{classification_dataset} ACC"
    table = ResultTable("Sensitivity: lambda (Eq. 19)",
                        columns=[forecast_col, class_col])
    for lam in lambdas:
        row = f"lambda={lam:g}"
        table.add(row, forecast_col,
                  _forecast_mse(forecast_dataset, preset, seed, lambda_weight=lam))
        table.add(row, class_col,
                  _classification_acc(classification_dataset, preset, seed,
                                      lambda_weight=lam))
    return table
