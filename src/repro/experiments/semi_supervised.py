"""Fig. 5 driver: semi-supervised learning with limited labels.

For each label fraction p:

* **Supervised** — the TimeDRL architecture, randomly initialised, trained
  end-to-end on the p-fraction of labelled data only;
* **TimeDRL (FT)** — the encoder is first pre-trained on *all* unlabeled
  training data with the two pretext tasks, then fine-tuned (encoder
  unfrozen, as the paper stresses) on the same p-fraction.

The paper's headline: the gap widens as p shrinks, and pre-training helps
even at p = 100%.
"""

from __future__ import annotations

from ..core import (
    PretrainConfig,
    TimeDRL,
    run_finetune_classification,
    run_finetune_forecasting,
    run_pretrain,
)
from ..telemetry import NULL_RUN
from .classification import prepare_classification_data, timedrl_classification_config
from .forecasting import prepare_forecasting_data, timedrl_config_for
from .scale import ScalePreset, get_scale
from .tables import ResultTable

__all__ = ["semi_supervised_forecasting", "semi_supervised_classification"]


def semi_supervised_forecasting(datasets: tuple[str, ...] = ("ETTh1",),
                                preset: ScalePreset | None = None,
                                seed: int = 0, run=None) -> ResultTable:
    """Fig. 5(a–c): test MSE vs label fraction, supervised vs TimeDRL(FT)."""
    preset = preset or get_scale()
    run = NULL_RUN if run is None else run
    table = ResultTable("Semi-supervised forecasting (test MSE)",
                        columns=["Supervised", "TimeDRL (FT)"])
    for dataset in datasets:
        prepared = prepare_forecasting_data(dataset, preset, univariate=False,
                                            seed=seed)
        __, data = next(iter(prepared["horizons"].items()))
        config = timedrl_config_for(prepared["n_features"], preset, seed=seed)

        with run.span("pretrain", dataset=dataset):
            pretrained = run_pretrain(config, data.train, PretrainConfig(
                epochs=preset.pretrain_epochs, batch_size=preset.batch_size,
                max_batches_per_epoch=preset.max_batches, seed=seed),
                run=run).model

        for fraction in preset.label_fractions:
            row = f"{dataset} @ {fraction:.0%}"
            with run.span("label_fraction", dataset=dataset, fraction=fraction):
                supervised_model = TimeDRL(config)  # random init, no pre-training
                supervised = run_finetune_forecasting(
                    supervised_model, data, label_fraction=fraction,
                    epochs=preset.finetune_epochs, batch_size=preset.batch_size,
                    seed=seed)
                table.add(row, "Supervised", supervised.mse)

                finetuned_model = _clone(pretrained, config)
                finetuned = run_finetune_forecasting(
                    finetuned_model, data, label_fraction=fraction,
                    epochs=preset.finetune_epochs, batch_size=preset.batch_size,
                    seed=seed)
                table.add(row, "TimeDRL (FT)", finetuned.mse)
            run.emit("metric", experiment="semi_supervised_forecasting",
                     dataset=dataset, label_fraction=fraction,
                     supervised_mse=supervised.mse, finetuned_mse=finetuned.mse)
    return table


def semi_supervised_classification(datasets: tuple[str, ...] = ("Epilepsy",),
                                   preset: ScalePreset | None = None,
                                   seed: int = 0, run=None) -> ResultTable:
    """Fig. 5(d–f): test accuracy vs label fraction."""
    preset = preset or get_scale()
    run = NULL_RUN if run is None else run
    table = ResultTable("Semi-supervised classification (test ACC %)",
                        columns=["Supervised", "TimeDRL (FT)"])
    for dataset in datasets:
        data = prepare_classification_data(dataset, preset, seed)
        config = timedrl_classification_config(dataset, preset, seed=seed)

        with run.span("pretrain", dataset=dataset):
            pretrained = run_pretrain(config, data.x_train, PretrainConfig(
                epochs=preset.classify_pretrain_epochs, batch_size=preset.batch_size,
                max_batches_per_epoch=preset.max_batches, seed=seed),
                run=run).model

        for fraction in preset.label_fractions:
            row = f"{dataset} @ {fraction:.0%}"
            with run.span("label_fraction", dataset=dataset, fraction=fraction):
                supervised_model = TimeDRL(config)
                supervised = run_finetune_classification(
                    supervised_model, data, label_fraction=fraction,
                    epochs=preset.finetune_epochs, batch_size=preset.batch_size,
                    seed=seed)
                table.add(row, "Supervised", supervised.accuracy)

                finetuned_model = _clone(pretrained, config)
                finetuned = run_finetune_classification(
                    finetuned_model, data, label_fraction=fraction,
                    epochs=preset.finetune_epochs, batch_size=preset.batch_size,
                    seed=seed)
                table.add(row, "TimeDRL (FT)", finetuned.accuracy)
            run.emit("metric", experiment="semi_supervised_classification",
                     dataset=dataset, label_fraction=fraction,
                     supervised_acc=supervised.accuracy,
                     finetuned_acc=finetuned.accuracy)
    return table


def _clone(model: TimeDRL, config) -> TimeDRL:
    """Fresh model loaded with pre-trained weights, so each label fraction
    fine-tunes from the same starting point."""
    clone = TimeDRL(config)
    clone.load_state_dict(model.state_dict())
    return clone
