"""Table V driver: linear evaluation on time-series classification.

Every method pre-trains on the (unlabeled) training samples, then a
softmax linear probe is trained on frozen instance-level embeddings and
scored with ACC / macro-F1 / Cohen's kappa on the held-out test split.
"""

from __future__ import annotations

import dataclasses
import pathlib

from ..baselines import CLASSIFICATION_BASELINES, FitConfig
from ..checkpoint import CheckpointConfig
from ..core import (
    PretrainConfig,
    RuntimeOptions,
    TimeDRLConfig,
    linear_evaluate_classification,
    run_pretrain,
    resolve_runtime,
)
from ..data import (
    CLASSIFICATION_DATASETS,
    classification_spec,
    load_classification_dataset,
    make_classification_data,
)
from ..data.datasets import ClassificationData
from ..evaluation import linear_probe_classification
from ..telemetry import NULL_RUN
from .scale import ScalePreset, get_scale
from .tables import ResultTable

__all__ = [
    "CLASSIFICATION_METHODS",
    "prepare_classification_data",
    "timedrl_classification_config",
    "run_classification_method",
    "classification_table",
]

CLASSIFICATION_METHODS = ("TimeDRL", "MHCCL", "CCL", "SimCLR", "BYOL",
                          "TS2Vec", "TS-TCC", "T-Loss")


def prepare_classification_data(dataset: str, preset: ScalePreset, seed: int = 0
                                ) -> ClassificationData:
    info = CLASSIFICATION_DATASETS[dataset]
    scale = min(1.0, preset.max_samples / info.samples)
    x, y = load_classification_dataset(dataset, scale=scale, seed=seed)
    return make_classification_data(x, y, seed=seed)


def timedrl_classification_config(dataset: str, preset: ScalePreset, seed: int = 0,
                                  **overrides) -> TimeDRLConfig:
    """The paper's classification configuration: channel independence *off*
    (Section V: 'for time-series classification, we found that omitting
    channel-independence yielded better results')."""
    info = CLASSIFICATION_DATASETS[dataset]
    d_model = max(preset.classify_d_model, 2 * preset.num_heads)
    # Patch sizing: keep the token width C*P at or below d_model so the
    # linear token encoding is not a lossy bottleneck (the reconstruction
    # pretext task needs head-room to encode each patch faithfully), and
    # never patch coarser than a quarter of the series.
    patch_len = max(min(preset.patch_len, info.length // 4,
                        d_model // info.features), 1)
    params = dict(
        seq_len=info.length, input_channels=info.features,
        patch_len=patch_len, stride=patch_len,
        d_model=d_model, num_heads=preset.num_heads,
        num_layers=preset.num_layers, channel_independence=False, seed=seed,
    )
    params.update(overrides)
    return TimeDRLConfig(**params)


def run_classification_method(method: str, dataset: str, data: ClassificationData,
                              preset: ScalePreset, seed: int = 0,
                              config_overrides: dict | None = None,
                              checkpoint: CheckpointConfig | None = None
                              ) -> dict[str, float]:
    """Pre-train + probe one method; returns ``{"ACC", "MF1", "kappa"}``.

    ``checkpoint`` applies to the TimeDRL pre-training only (baselines own
    their fit loops): each dataset checkpoints into its own subdirectory
    with a data spec so ``repro runs resume`` can rebuild the samples.
    """
    if method == "TimeDRL":
        config = timedrl_classification_config(dataset, preset, seed=seed,
                                               **(config_overrides or {}))
        if checkpoint is not None:
            info = CLASSIFICATION_DATASETS[dataset]
            scale = min(1.0, preset.max_samples / info.samples)
            base = checkpoint.directory or "results/checkpoints"
            checkpoint = dataclasses.replace(
                checkpoint, directory=str(pathlib.Path(base) / dataset),
                data_spec=classification_spec(dataset, scale=scale, seed=seed))
        outcome = run_pretrain(config, data.x_train, PretrainConfig(
            epochs=preset.classify_pretrain_epochs, batch_size=preset.batch_size,
            max_batches_per_epoch=preset.max_batches, seed=seed,
            checkpoint=checkpoint))
        scores = linear_evaluate_classification(outcome.model, data,
                                                epochs=preset.probe_epochs, seed=seed)
    elif method in CLASSIFICATION_BASELINES:
        model = CLASSIFICATION_BASELINES[method](
            in_channels=data.n_features, d_model=preset.d_model, seed=seed)
        model.fit(data.x_train, FitConfig(
            epochs=preset.classify_pretrain_epochs, batch_size=preset.batch_size,
            max_batches_per_epoch=preset.max_batches, seed=seed))
        scores = linear_probe_classification(lambda x: model.encode(x)[1], data,
                                             epochs=preset.probe_epochs, seed=seed)
    else:
        raise KeyError(f"unknown classification method {method!r}; "
                       f"available: {CLASSIFICATION_METHODS}")
    return {"ACC": scores.accuracy, "MF1": scores.macro_f1, "kappa": scores.kappa}


def classification_table(datasets: tuple[str, ...] = ("Epilepsy",),
                         methods: tuple[str, ...] = CLASSIFICATION_METHODS,
                         preset: ScalePreset | None = None,
                         seed: int = 0, run=None,
                         checkpoint: CheckpointConfig | None = None,
                         runtime: RuntimeOptions | None = None
                         ) -> dict[str, ResultTable]:
    """Regenerate the paper's Table V.

    Returns ``{"ACC": table, "MF1": table, "kappa": table}``, one row per
    dataset and one column per method (values are percentages).  An
    optional telemetry ``run`` traces each cell and records every score as
    a structured metric event.
    """
    preset = preset or get_scale()
    run = NULL_RUN if run is None else run
    if runtime is not None:
        checkpoint = resolve_runtime(runtime).checkpoint
    tables = {
        metric: ResultTable(f"Linear evaluation, classification ({metric})",
                            columns=list(methods))
        for metric in ("ACC", "MF1", "kappa")
    }
    for dataset in datasets:
        with run.span("dataset", dataset=dataset):
            data = prepare_classification_data(dataset, preset, seed)
            for method in methods:
                with run.span("method", dataset=dataset, method=method):
                    scores = run_classification_method(method, dataset, data,
                                                       preset, seed,
                                                       checkpoint=checkpoint)
                for metric in tables:
                    tables[metric].add(dataset, method, scores[metric])
                run.emit("metric", experiment="classification_table",
                         dataset=dataset, method=method, **scores)
    return tables
