"""Benchmark scale presets.

The paper's experiments ran on a GPU with full-size datasets; this
reproduction runs on a single CPU core, so the benchmark harness scales
everything down while preserving every protocol detail.  Three presets:

* ``smoke``   — seconds; used by the test suite.
* ``default`` — minutes; what ``pytest benchmarks/`` runs.
* ``full``    — paper-faithful sizes (hours on CPU); opt-in.

Select with the ``REPRO_BENCH_SCALE`` environment variable.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

__all__ = ["ScalePreset", "SMOKE", "DEFAULT", "FULL", "get_scale"]


@dataclass(frozen=True)
class ScalePreset:
    """Everything a table/figure driver needs to size an experiment."""

    name: str
    max_timesteps: int            # cap on forecasting series length
    max_samples: int              # cap on classification sample count
    seq_len: int                  # input window length
    horizons: tuple[int, ...]     # forecasting prediction lengths
    window_stride: int            # sliding-window stride
    pretrain_epochs: int
    classify_pretrain_epochs: int  # classification sets are smaller; more epochs
    ablation_pretrain_epochs: int  # forecasting ablations need longer training
                                   # for augmentation/backbone effects to show
    finetune_epochs: int
    batch_size: int
    max_batches: int | None       # cap batches/epoch (None = all)
    d_model: int
    classify_d_model: int         # classification encoder width (C*P head-room)
    num_layers: int
    num_heads: int
    patch_len: int
    probe_epochs: int             # classification linear-probe epochs
    label_fractions: tuple[float, ...] = (0.1, 0.5, 1.0)


SMOKE = ScalePreset(
    name="smoke", max_timesteps=700, max_samples=120, seq_len=32,
    horizons=(8,), window_stride=4, pretrain_epochs=1,
    classify_pretrain_epochs=1, ablation_pretrain_epochs=1, finetune_epochs=1,
    batch_size=16, max_batches=6, d_model=16, classify_d_model=16,
    num_layers=1, num_heads=2,
    patch_len=8, probe_epochs=40, label_fractions=(0.2, 1.0),
)

DEFAULT = ScalePreset(
    name="default", max_timesteps=2000, max_samples=1000, seq_len=64,
    horizons=(24, 48), window_stride=4, pretrain_epochs=3,
    classify_pretrain_epochs=10, ablation_pretrain_epochs=10, finetune_epochs=3,
    batch_size=32, max_batches=25, d_model=32, classify_d_model=64,
    num_layers=2, num_heads=4,
    patch_len=8, probe_epochs=100, label_fractions=(0.1, 0.5, 1.0),
)

FULL = ScalePreset(
    name="full", max_timesteps=20_000, max_samples=4_000, seq_len=336,
    horizons=(24, 48, 168, 336, 720), window_stride=1, pretrain_epochs=10,
    classify_pretrain_epochs=20, ablation_pretrain_epochs=10, finetune_epochs=10, batch_size=32,
    max_batches=None, d_model=64, classify_d_model=128, num_layers=2, num_heads=8, patch_len=16, probe_epochs=300,
    label_fractions=(0.01, 0.05, 0.1, 0.5, 1.0),
)

_PRESETS = {"smoke": SMOKE, "default": DEFAULT, "full": FULL}


def get_scale(override: str | None = None) -> ScalePreset:
    """Resolve the active preset: explicit arg > env var > default."""
    name = override or os.environ.get("REPRO_BENCH_SCALE", "default")
    if name not in _PRESETS:
        raise KeyError(f"unknown scale preset {name!r}; choose from {sorted(_PRESETS)}")
    return _PRESETS[name]
