"""Table III / Table IV drivers: linear evaluation on time-series
forecasting (multivariate and univariate).

Protocol per method and dataset:

* representation learners (TimeDRL, SimTS, TS2Vec, TNC, CoST) pre-train
  once on the training windows, then a linear probe is fit per prediction
  length on frozen features;
* end-to-end models (Informer, TCN) are trained from scratch per
  prediction length.

Results are MSE/MAE on the chronological test split in the dataset's
standard-scaled space, mirroring the paper.
"""

from __future__ import annotations

import dataclasses
import pathlib

import numpy as np

from ..baselines import (
    END_TO_END_FORECASTERS,
    FORECASTING_SSL_BASELINES,
    FitConfig,
)
from ..checkpoint import CheckpointConfig
from ..core import (
    PretrainConfig,
    RuntimeOptions,
    TimeDRLConfig,
    linear_evaluate_forecasting,
    run_pretrain,
    resolve_runtime,
)
from ..data import (
    FORECASTING_DATASETS,
    forecasting_spec,
    load_forecasting_dataset,
    make_forecasting_data,
)
from ..evaluation import ridge_probe_forecasting
from ..telemetry import NULL_RUN
from .scale import ScalePreset, get_scale
from .tables import ResultTable

__all__ = [
    "FORECAST_METHODS",
    "prepare_forecasting_data",
    "timedrl_config_for",
    "run_forecasting_method",
    "forecasting_table",
]

FORECAST_METHODS = ("TimeDRL", "SimTS", "TS2Vec", "TNC", "CoST", "Informer", "TCN")


def prepare_forecasting_data(dataset: str, preset: ScalePreset,
                             univariate: bool = False, seed: int = 0) -> dict:
    """Build per-horizon :class:`ForecastingData` plus shared metadata."""
    info = FORECASTING_DATASETS[dataset]
    scale = min(1.0, preset.max_timesteps / info.timesteps)
    series = load_forecasting_dataset(dataset, scale=scale, seed=seed)
    target = info.univariate_target if univariate else None
    horizons = [h for h in preset.horizons
                if _fits(len(series), preset.seq_len, h)]
    if not horizons:
        raise ValueError(f"no preset horizon fits dataset {dataset} at this scale")
    per_horizon = {
        horizon: make_forecasting_data(series, preset.seq_len, horizon,
                                       stride=preset.window_stride,
                                       univariate_target=target)
        for horizon in horizons
    }
    n_features = 1 if univariate else info.features
    return {"horizons": per_horizon, "n_features": n_features, "series": series,
            "spec": {"dataset": dataset, "scale": scale, "seed": seed,
                     "seq_len": preset.seq_len, "stride": preset.window_stride,
                     "univariate_target": target}}


def _fits(length: int, seq_len: int, horizon: int) -> bool:
    test_span = length - int(length * 0.8)
    return test_span >= seq_len + horizon


def timedrl_config_for(n_features: int, preset: ScalePreset, seed: int = 0,
                       **overrides) -> TimeDRLConfig:
    """The paper's forecasting configuration: channel independence on."""
    params = dict(
        seq_len=preset.seq_len, input_channels=n_features,
        patch_len=preset.patch_len, stride=preset.patch_len,
        d_model=preset.d_model, num_heads=preset.num_heads,
        num_layers=preset.num_layers, channel_independence=True, seed=seed,
    )
    params.update(overrides)
    return TimeDRLConfig(**params)


def _dataset_checkpoint(checkpoint: CheckpointConfig | None, dataset: str,
                        data_spec: dict | None) -> CheckpointConfig | None:
    """Per-dataset checkpoint sub-config: each dataset's pre-train gets its
    own subdirectory (shared directories would collide file names) and a
    data spec so ``repro runs resume`` can rebuild the training data."""
    if checkpoint is None:
        return None
    base = checkpoint.directory or "results/checkpoints"
    return dataclasses.replace(checkpoint,
                               directory=str(pathlib.Path(base) / dataset),
                               data_spec=data_spec)


def run_forecasting_method(method: str, prepared: dict, preset: ScalePreset,
                           seed: int = 0, config_overrides: dict | None = None,
                           checkpoint: CheckpointConfig | None = None
                           ) -> dict[int, tuple[float, float]]:
    """Run one method over every horizon; returns ``{horizon: (mse, mae)}``.

    ``checkpoint`` applies to the TimeDRL pre-training only (baselines own
    their fit loops).
    """
    horizons = prepared["horizons"]
    n_features = prepared["n_features"]
    first_horizon = next(iter(horizons))
    first_data = horizons[first_horizon]
    results: dict[int, tuple[float, float]] = {}

    if method == "TimeDRL":
        config = timedrl_config_for(n_features, preset, seed=seed,
                                    **(config_overrides or {}))
        spec = prepared.get("spec")
        data_spec = (forecasting_spec(pred_len=first_horizon, **spec)
                     if spec is not None else None)
        outcome = run_pretrain(config, first_data.train, PretrainConfig(
            epochs=preset.pretrain_epochs, batch_size=preset.batch_size,
            max_batches_per_epoch=preset.max_batches, seed=seed,
            checkpoint=_dataset_checkpoint(
                checkpoint, spec["dataset"] if spec else "forecasting",
                data_spec)))
        for horizon, data in horizons.items():
            scores = linear_evaluate_forecasting(outcome.model, data)
            results[horizon] = (scores.mse, scores.mae)
        return results

    if method in FORECASTING_SSL_BASELINES:
        model = FORECASTING_SSL_BASELINES[method](
            in_channels=n_features, d_model=preset.d_model, seed=seed)
        model.fit(first_data.train, FitConfig(
            epochs=preset.pretrain_epochs, batch_size=preset.batch_size,
            max_batches_per_epoch=preset.max_batches, seed=seed))
        for horizon, data in horizons.items():
            scores = ridge_probe_forecasting(
                lambda x: model.encode(x)[0].reshape(len(x), -1), data)
            results[horizon] = (scores.mse, scores.mae)
        return results

    if method in END_TO_END_FORECASTERS:
        for horizon, data in horizons.items():
            if method == "Informer":
                model = END_TO_END_FORECASTERS[method](
                    in_channels=n_features, seq_len=preset.seq_len,
                    pred_len=horizon, d_model=preset.d_model, seed=seed)
            else:
                model = END_TO_END_FORECASTERS[method](
                    in_channels=n_features, pred_len=horizon,
                    d_model=preset.d_model, seed=seed)
            model.fit(data, FitConfig(
                epochs=preset.pretrain_epochs, batch_size=preset.batch_size,
                max_batches_per_epoch=preset.max_batches, seed=seed))
            results[horizon] = model.evaluate(data)
        return results

    raise KeyError(f"unknown forecasting method {method!r}; "
                   f"available: {FORECAST_METHODS}")


def forecasting_table(datasets: tuple[str, ...] = ("ETTh1",),
                      methods: tuple[str, ...] = FORECAST_METHODS,
                      univariate: bool = False,
                      preset: ScalePreset | None = None,
                      seed: int = 0, run=None,
                      checkpoint: CheckpointConfig | None = None,
                      runtime: RuntimeOptions | None = None
                      ) -> dict[str, ResultTable]:
    """Regenerate the paper's Table III (or IV with ``univariate=True``).

    Returns ``{"MSE": table, "MAE": table}`` with one row per
    dataset/horizon pair and one column per method.  An optional telemetry
    ``run`` traces each dataset/method cell as a span and records every
    (mse, mae) score as a structured metric event.  ``checkpoint``
    enables fault-tolerant TimeDRL pre-training (one subdirectory per
    dataset).
    """
    preset = preset or get_scale()
    run = NULL_RUN if run is None else run
    if runtime is not None:
        checkpoint = resolve_runtime(runtime).checkpoint
    flavour = "univariate" if univariate else "multivariate"
    mse_table = ResultTable(f"Linear evaluation, {flavour} forecasting (MSE)",
                            columns=list(methods))
    mae_table = ResultTable(f"Linear evaluation, {flavour} forecasting (MAE)",
                            columns=list(methods))
    for dataset in datasets:
        with run.span("dataset", dataset=dataset, flavour=flavour):
            prepared = prepare_forecasting_data(dataset, preset, univariate, seed)
            for method in methods:
                with run.span("method", dataset=dataset, method=method):
                    per_horizon = run_forecasting_method(method, prepared,
                                                         preset, seed,
                                                         checkpoint=checkpoint)
                for horizon, (mse_value, mae_value) in per_horizon.items():
                    row = f"{dataset}-{horizon}"
                    mse_table.add(row, method, mse_value)
                    mae_table.add(row, method, mae_value)
                    run.emit("metric", experiment="forecasting_table",
                             dataset=dataset, method=method, horizon=horizon,
                             mse=mse_value, mae=mae_value)
    return {"MSE": mse_table, "MAE": mae_table}
