"""Result-table container with paper-style printing.

Every table/figure driver returns a :class:`ResultTable`; the benchmark
harness prints it in the same rows-by-method layout the paper uses and
EXPERIMENTS.md records.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..telemetry import console_log

__all__ = ["ResultTable"]


@dataclass
class ResultTable:
    """A labelled grid of floats: ``rows × columns`` with a title."""

    title: str
    columns: list[str]
    rows: list[str] = field(default_factory=list)
    values: dict[tuple[str, str], float] = field(default_factory=dict)

    def add(self, row: str, column: str, value: float) -> None:
        if column not in self.columns:
            raise KeyError(f"unknown column {column!r}")
        if row not in self.rows:
            self.rows.append(row)
        self.values[(row, column)] = float(value)

    def get(self, row: str, column: str) -> float:
        return self.values[(row, column)]

    def row_values(self, row: str) -> dict[str, float]:
        return {c: self.values[(row, c)] for c in self.columns if (row, c) in self.values}

    def best_column(self, row: str, minimise: bool = True) -> str:
        """Column with the best value in ``row`` (min for errors, max for
        accuracies)."""
        present = self.row_values(row)
        if not present:
            raise KeyError(f"row {row!r} has no values")
        chooser = min if minimise else max
        return chooser(present, key=present.get)

    def to_markdown(self, float_format: str = "{:.3f}") -> str:
        header = "| " + " | ".join([""] + self.columns) + " |"
        divider = "|" + "---|" * (len(self.columns) + 1)
        lines = [f"### {self.title}", "", header, divider]
        for row in self.rows:
            cells = []
            for column in self.columns:
                value = self.values.get((row, column))
                cells.append(float_format.format(value) if value is not None else "—")
            lines.append("| " + " | ".join([row] + cells) + " |")
        return "\n".join(lines)

    def print(self, float_format: str = "{:.3f}") -> None:
        """Render to the console (stdlib-logging backed, capsys-friendly)."""
        console_log(self.to_markdown(float_format))
        console_log()

    @classmethod
    def from_markdown(cls, text: str) -> "ResultTable":
        """Parse a table previously written by :meth:`to_markdown`.

        Round-tripping through ``results/*.md`` lets tooling (the SVG
        figure renderer, the aggregate reporter) consume archived runs
        without re-running experiments.  Missing cells ("—") are skipped.
        """
        lines = [line.strip() for line in text.strip().splitlines() if line.strip()]
        if not lines or not lines[0].startswith("### "):
            raise ValueError("expected a '### title' heading")
        title = lines[0][4:]
        header = next((line for line in lines[1:] if line.startswith("|")), None)
        if header is None:
            raise ValueError("no table header found")
        columns = [cell.strip() for cell in header.strip("|").split("|")][1:]
        table = cls(title, columns=columns)
        body_start = lines.index(header) + 2  # skip the divider row
        for line in lines[body_start:]:
            if not line.startswith("|"):
                break
            cells = [cell.strip() for cell in line.strip("|").split("|")]
            row_name, values = cells[0], cells[1:]
            for column, cell in zip(columns, values):
                if cell and cell != "—":
                    table.add(row_name, column, float(cell))
        return table
