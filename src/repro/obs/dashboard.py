"""Terminal dashboard renderer for ``repro obs snapshot|watch``.

Pure formatting: :class:`Dashboard` turns a registry snapshot into a
fixed-width text panel (resources, serving, cache, training, data,
checkpointing, SLO verdicts).  It keeps the previous counter snapshot so
successive renders show *rates* (requests/s, windows/s) next to totals —
the live ``watch`` loop calls ``render()`` once per refresh tick and the
CLI repaints the screen.

No ANSI codes in here; the CLI owns the terminal (clear/repaint), this
module owns the text, which keeps it printable in logs and testable as
plain strings.
"""

from __future__ import annotations

import time

from .export import flatten_snapshot
from .metrics import get_registry

__all__ = ["Dashboard", "format_bytes", "format_quantity"]

WIDTH = 78


def format_bytes(value: float | None) -> str:
    if value is None:
        return "—"
    for unit in ("B", "KiB", "MiB", "GiB", "TiB"):
        if abs(value) < 1024 or unit == "TiB":
            return f"{value:.1f}{unit}" if unit != "B" else f"{int(value)}B"
        value /= 1024
    return f"{value:.1f}TiB"


def format_quantity(value: float | None, digits: int = 1) -> str:
    if value is None:
        return "—"
    if abs(value) >= 1e6:
        return f"{value / 1e6:.{digits}f}M"
    if abs(value) >= 1e3:
        return f"{value / 1e3:.{digits}f}k"
    if value == int(value):
        return str(int(value))
    return f"{value:.{digits}f}"


def _ms(flat: dict, name: str) -> str:
    value = flat.get(name)
    return "—" if value is None else f"{value:.2f}ms"


class Dashboard:
    """Stateful renderer: remembers the last snapshot to show rates."""

    def __init__(self, registry=None, slo_rules=None, title: str = "repro obs"):
        self._registry = registry
        self.slo_rules = slo_rules
        self.title = title
        self._previous_flat: dict[str, float] | None = None
        self._previous_time: float | None = None
        self.renders = 0

    @property
    def registry(self):
        return self._registry if self._registry is not None else get_registry()

    # -- rate bookkeeping -------------------------------------------------
    def _rate(self, flat: dict, name: str, elapsed: float | None) -> float | None:
        if (elapsed is None or elapsed <= 0 or self._previous_flat is None
                or name not in flat or name not in self._previous_flat):
            return None
        return (flat[name] - self._previous_flat[name]) / elapsed

    # -- rendering --------------------------------------------------------
    def render(self, now: float | None = None) -> str:
        registry = self.registry
        snapshot = registry.snapshot()
        flat = flatten_snapshot(snapshot)
        now = time.time() if now is None else now
        elapsed = (None if self._previous_time is None
                   else now - self._previous_time)

        lines: list[str] = []
        stamp = time.strftime("%H:%M:%S", time.localtime(now))
        header = f"{self.title} · {stamp}"
        if self.renders:
            header += f" · refresh #{self.renders}"
        lines.append("=" * WIDTH)
        lines.append(header[:WIDTH])
        lines.append("=" * WIDTH)
        lines.extend(self._resources_section(flat))
        lines.extend(self._serve_section(flat, elapsed))
        lines.extend(self._cache_section(flat))
        lines.extend(self._train_section(flat, elapsed))
        lines.extend(self._data_section(flat))
        lines.extend(self._checkpoint_section(flat))
        lines.extend(self._slo_section(registry))
        lines.append("=" * WIDTH)

        self._previous_flat = flat
        self._previous_time = now
        self.renders += 1
        return "\n".join(lines)

    def _section(self, title: str, rows: list[str]) -> list[str]:
        if not rows:
            return []
        return [f"-- {title} " + "-" * max(0, WIDTH - len(title) - 4), *rows]

    @staticmethod
    def _columns(pairs: list[tuple[str, str]], per_row: int = 3) -> list[str]:
        cell = WIDTH // per_row
        rows = []
        for start in range(0, len(pairs), per_row):
            chunk = pairs[start:start + per_row]
            rows.append("".join(f"{label}: {value}".ljust(cell)
                                for label, value in chunk).rstrip())
        return rows

    def _resources_section(self, flat: dict) -> list[str]:
        pairs = []
        if "process_resident_bytes" in flat:
            pairs.append(("rss", format_bytes(flat["process_resident_bytes"])))
        if "process_max_resident_bytes" in flat:
            pairs.append(("peak", format_bytes(flat["process_max_resident_bytes"])))
        if "process_cpu_seconds_total" in flat:
            pairs.append(("cpu", f"{flat['process_cpu_seconds_total']:.1f}s"))
        if "process_threads" in flat:
            pairs.append(("threads", format_quantity(flat["process_threads"])))
        if "process_open_fds" in flat:
            pairs.append(("fds", format_quantity(flat["process_open_fds"])))
        if "process_gc_collections_total" in flat:
            pairs.append(("gc runs",
                          format_quantity(flat["process_gc_collections_total"])))
        return self._section("resources", self._columns(pairs))

    def _serve_section(self, flat: dict, elapsed: float | None) -> list[str]:
        if "serve_requests_total" not in flat:
            return []
        pairs = [("requests", format_quantity(flat["serve_requests_total"], 0)),
                 ("windows", format_quantity(flat.get("serve_windows_total"), 0)),
                 ("batches", format_quantity(flat.get("serve_batches_total"), 0))]
        rate = self._rate(flat, "serve_windows_total", elapsed)
        if rate is not None:
            pairs.append(("windows/s", format_quantity(rate, 0)))
        if "serve_queue_depth" in flat:
            pairs.append(("queue", format_quantity(flat["serve_queue_depth"], 0)))
        rows = self._columns(pairs)
        latency = [("p50", _ms(flat, "serve_request_ms_p50")),
                   ("p95", _ms(flat, "serve_request_ms_p95")),
                   ("max", _ms(flat, "serve_request_ms_max"))]
        if flat.get("serve_request_ms_count"):
            rows += self._columns(latency)
        return self._section("serving", rows)

    def _cache_section(self, flat: dict) -> list[str]:
        if "serve_cache_hits_total" not in flat:
            return []
        pairs = [("hits", format_quantity(flat["serve_cache_hits_total"], 0)),
                 ("misses", format_quantity(flat.get("serve_cache_misses_total"), 0)),
                 ("evictions",
                  format_quantity(flat.get("serve_cache_evictions_total"), 0))]
        if "serve_cache_hit_rate" in flat:
            pairs.append(("hit rate", f"{flat['serve_cache_hit_rate']:.1%}"))
        if "serve_cache_size" in flat:
            pairs.append(("size", format_quantity(flat["serve_cache_size"], 0)))
        return self._section("embedding cache", self._columns(pairs))

    def _train_section(self, flat: dict, elapsed: float | None) -> list[str]:
        if "train_steps_total" not in flat:
            return []
        pairs = [("steps", format_quantity(flat["train_steps_total"], 0)),
                 ("epochs", format_quantity(flat.get("train_epochs_total"), 0))]
        rate = self._rate(flat, "train_steps_total", elapsed)
        if rate is not None:
            pairs.append(("steps/s", format_quantity(rate, 1)))
        if "train_last_loss" in flat:
            pairs.append(("loss", f"{flat['train_last_loss']:.4f}"))
        if flat.get("train_epoch_seconds_count"):
            pairs.append(("epoch mean",
                          f"{flat['train_epoch_seconds_mean']:.2f}s"))
        return self._section("training", self._columns(pairs))

    def _data_section(self, flat: dict) -> list[str]:
        if "prefetch_batches_total" not in flat:
            return []
        pairs = [("batches", format_quantity(flat["prefetch_batches_total"], 0)),
                 ("queue", format_quantity(flat.get("prefetch_queue_depth"), 0))]
        if flat.get("prefetch_wait_ms_count"):
            pairs.append(("stall p95", _ms(flat, "prefetch_wait_ms_p95")))
        return self._section("prefetch", self._columns(pairs))

    def _checkpoint_section(self, flat: dict) -> list[str]:
        if not (flat.get("checkpoint_save_ms_count")
                or flat.get("checkpoint_load_ms_count")):
            return []
        pairs = []
        if flat.get("checkpoint_save_ms_count"):
            pairs.append(("saves",
                          format_quantity(flat["checkpoint_save_ms_count"], 0)))
            pairs.append(("save p95", _ms(flat, "checkpoint_save_ms_p95")))
        if flat.get("checkpoint_load_ms_count"):
            pairs.append(("loads",
                          format_quantity(flat["checkpoint_load_ms_count"], 0)))
            pairs.append(("load p95", _ms(flat, "checkpoint_load_ms_p95")))
        return self._section("checkpoints", self._columns(pairs))

    def _slo_section(self, registry) -> list[str]:
        if self.slo_rules is None or not len(self.slo_rules):
            return []
        rows = []
        for result in self.slo_rules.evaluate(registry):
            marker = {"ok": "PASS", "violated": "FAIL",
                      "unknown": "  ? "}[result["status"]]
            value = (f"{result['value']:.4g}" if result["value"] is not None
                     else "—")
            rows.append(f"[{marker}] {result['rule']}  (value: {value})")
        return self._section("slo", rows)
