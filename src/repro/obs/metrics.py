"""Labeled metric primitives and the process-wide :class:`MetricsRegistry`.

Three metric kinds, deliberately Prometheus-shaped so the exposition
exporter (:mod:`repro.obs.export`) is a straight serialization:

* :class:`Counter` — monotonically increasing totals (requests served,
  batches run, cache hits);
* :class:`Gauge` — point-in-time values that go both ways (queue depth,
  resident memory, hit rate);
* :class:`Histogram` — **fixed-bucket streaming** distributions: each
  observation lands in one of a constant set of buckets, so memory is
  O(buckets) no matter how many samples arrive, and percentiles come
  from bucket interpolation (exact ``count``/``sum``/``min``/``max``,
  approximate ``p50``/``p95``).

Every metric is a *family*: ``family.labels(kind="encode")`` returns the
child time-series for one label combination; calling ``inc``/``set``/
``observe`` on the family itself addresses the label-less child.  All
mutation is thread-safe (one lock per family — serving's worker thread
and caller threads hit the same counters).

The process-wide registry is off by default.  :func:`get_registry`
returns the shared :data:`NULL_REGISTRY` until :func:`enable` is called
(or the ``REPRO_OBS`` environment variable is set), and every null
primitive is a shared no-op singleton — the disabled path allocates
nothing and does no locking, mirroring the telemetry ``NullRun`` and
profiler disabled-is-free contracts.
"""

from __future__ import annotations

import bisect
import math
import os
import threading
import time

__all__ = [
    "Counter", "Gauge", "Histogram", "MetricsRegistry",
    "NULL_REGISTRY", "NullMetric", "NullRegistry",
    "enable", "disable", "enabled", "get_registry", "set_registry",
    "DEFAULT_LATENCY_BUCKETS_MS", "DEFAULT_SECONDS_BUCKETS",
]

# Upper bucket bounds for millisecond-scale latencies (serving requests)
# and second-scale durations (epochs, checkpoint writes).  A final +Inf
# bucket is implicit in every histogram.
DEFAULT_LATENCY_BUCKETS_MS = (
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0,
    100.0, 250.0, 500.0, 1000.0, 2500.0, 5000.0, 10000.0)
DEFAULT_SECONDS_BUCKETS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 300.0)

_KINDS = ("counter", "gauge", "histogram")


def _label_key(labels: dict) -> tuple:
    return tuple(sorted(labels.items()))


class _Family:
    """Shared machinery: one named metric with labeled children."""

    kind = "abstract"

    def __init__(self, name: str, help: str = "", label_names: tuple = ()):
        self.name = name
        self.help = help
        self.label_names = tuple(label_names)
        self._children: dict[tuple, object] = {}
        self._lock = threading.Lock()

    def labels(self, **labels):
        """The child time-series for one label combination (created lazily).

        Existing children resolve with a lock-free dict read (safe under
        the GIL: ``_children`` only ever grows) — this is the per-sample
        hot path for every instrumented call site.  Validation and
        creation happen once, on the locked miss path.
        """
        key = _label_key(labels)
        child = self._children.get(key)
        if child is not None:
            return child
        if set(labels) != set(self.label_names):
            raise ValueError(
                f"metric {self.name!r} declares labels {self.label_names}, "
                f"got {tuple(sorted(labels))}")
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = self._children[key] = self._make_child()
        return child

    def _default(self):
        if self.label_names:
            raise ValueError(
                f"metric {self.name!r} is labeled {self.label_names}; "
                "address a child via .labels(...)")
        return self.labels()

    def _make_child(self):
        raise NotImplementedError

    def series(self) -> list[tuple[dict, object]]:
        """``[(labels_dict, child), ...]`` snapshot of existing children."""
        with self._lock:
            return [(dict(key), child)
                    for key, child in list(self._children.items())]

    def snapshot(self) -> dict:
        return {"kind": self.kind, "help": self.help,
                "label_names": list(self.label_names),
                "series": [{"labels": labels, **child._snapshot()}
                           for labels, child in self.series()]}


class _CounterChild:
    __slots__ = ("_value", "_lock")

    def __init__(self):
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def _snapshot(self) -> dict:
        return {"value": self._value}


class Counter(_Family):
    """Monotonically increasing total, optionally split by labels."""

    kind = "counter"

    def _make_child(self):
        return _CounterChild()

    def inc(self, amount: float = 1.0) -> None:
        self._default().inc(amount)

    @property
    def value(self) -> float:
        """Sum over every labeled child (the family total)."""
        return sum(child.value for __, child in self.series())


class _GaugeChild:
    __slots__ = ("_value", "_lock")

    def __init__(self):
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        return self._value

    def _snapshot(self) -> dict:
        return {"value": self._value}


class Gauge(_Family):
    """Point-in-time value that can rise and fall."""

    kind = "gauge"

    def _make_child(self):
        return _GaugeChild()

    def set(self, value: float) -> None:
        self._default().set(value)

    def inc(self, amount: float = 1.0) -> None:
        self._default().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._default().dec(amount)

    @property
    def value(self) -> float:
        series = self.series()
        return series[0][1].value if len(series) == 1 else sum(
            child.value for __, child in series)


class _HistogramChild:
    """Fixed-bucket streaming histogram: O(buckets) memory forever."""

    __slots__ = ("_bounds", "_counts", "_count", "_sum", "_min", "_max",
                 "_lock")

    def __init__(self, bounds: tuple):
        self._bounds = bounds
        self._counts = [0] * (len(bounds) + 1)  # last slot is +Inf
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        index = bisect.bisect_left(self._bounds, value)
        with self._lock:
            self._counts[index] += 1
            self._count += 1
            self._sum += value
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value

    # -- reads ------------------------------------------------------------
    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def mean(self) -> float:
        return self._sum / self._count if self._count else float("nan")

    def percentile(self, q: float) -> float:
        """Approximate q-th percentile via linear bucket interpolation.

        Exact at the edges (clamped to the observed min/max); inside a
        bucket the mass is assumed uniform.  NaN when empty.
        """
        with self._lock:
            if not self._count:
                return float("nan")
            counts = list(self._counts)
            count, low, high = self._count, self._min, self._max
        rank = (q / 100.0) * count
        cumulative = 0
        for index, bucket_count in enumerate(counts):
            if not bucket_count:
                continue
            if cumulative + bucket_count >= rank:
                lower = low if index == 0 else self._bounds[index - 1]
                upper = high if index == len(self._bounds) else self._bounds[index]
                lower = max(lower, low)
                upper = min(upper, high)
                if upper <= lower:
                    return float(lower)
                fraction = (rank - cumulative) / bucket_count
                return float(lower + (upper - lower) * min(max(fraction, 0.0), 1.0))
            cumulative += bucket_count
        return float(high)

    def merge(self, other: "_HistogramChild") -> None:
        if other._bounds != self._bounds:
            raise ValueError("cannot merge histograms with different buckets")
        with other._lock:
            counts = list(other._counts)
            count, total = other._count, other._sum
            low, high = other._min, other._max
        with self._lock:
            for index, bucket_count in enumerate(counts):
                self._counts[index] += bucket_count
            self._count += count
            self._sum += total
            self._min = min(self._min, low)
            self._max = max(self._max, high)

    def reset(self) -> None:
        with self._lock:
            self._counts = [0] * (len(self._bounds) + 1)
            self._count = 0
            self._sum = 0.0
            self._min = math.inf
            self._max = -math.inf

    def _snapshot(self) -> dict:
        with self._lock:
            return {"count": self._count, "sum": self._sum,
                    "min": (None if not self._count else self._min),
                    "max": (None if not self._count else self._max),
                    "buckets": list(zip(list(self._bounds) + ["+Inf"],
                                        list(self._counts)))}


class Histogram(_Family):
    """Streaming distribution over fixed buckets (see module docstring)."""

    kind = "histogram"

    def __init__(self, name: str, help: str = "", label_names: tuple = (),
                 buckets: tuple = DEFAULT_LATENCY_BUCKETS_MS):
        super().__init__(name, help, label_names)
        bounds = tuple(float(b) for b in buckets)
        if list(bounds) != sorted(set(bounds)):
            raise ValueError("histogram buckets must be strictly increasing")
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self.buckets = bounds

    def _make_child(self):
        return _HistogramChild(self.buckets)

    def observe(self, value: float) -> None:
        self._default().observe(value)

    @property
    def count(self) -> int:
        return sum(child.count for __, child in self.series())

    def percentile(self, q: float) -> float:
        return self._default().percentile(q)


_FAMILY_TYPES = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricsRegistry:
    """Thread-safe, process-wide home for metric families.

    ``counter/gauge/histogram`` are get-or-create: the first call with a
    name defines the family, later calls return the same object (a kind
    or label mismatch raises — two subsystems silently sharing one name
    with different schemas is a bug worth failing loudly on).
    """

    def __init__(self):
        self._families: dict[str, _Family] = {}
        self._lock = threading.Lock()
        self.created_unix = time.time()

    # -- family accessors -------------------------------------------------
    def counter(self, name: str, help: str = "",
                labels: tuple = ()) -> Counter:
        return self._get_or_create("counter", name, help, labels)

    def gauge(self, name: str, help: str = "", labels: tuple = ()) -> Gauge:
        return self._get_or_create("gauge", name, help, labels)

    def histogram(self, name: str, help: str = "", labels: tuple = (),
                  buckets: tuple = DEFAULT_LATENCY_BUCKETS_MS) -> Histogram:
        return self._get_or_create("histogram", name, help, labels,
                                   buckets=buckets)

    def _get_or_create(self, kind: str, name: str, help: str,
                       labels: tuple, **kwargs) -> _Family:
        labels = tuple(labels)
        # Lock-free fast path for the overwhelmingly common re-lookup
        # (instrumented call sites re-resolve their family per sample).
        family = self._families.get(name)
        if family is None:
            with self._lock:
                family = self._families.get(name)
                if family is None:
                    factory = _FAMILY_TYPES[kind]
                    family = factory(name, help=help, label_names=labels,
                                     **kwargs)
                    self._families[name] = family
                    return family
        if family.kind != kind:
            raise ValueError(
                f"metric {name!r} already registered as a {family.kind}, "
                f"requested {kind}")
        if family.label_names != labels:
            raise ValueError(
                f"metric {name!r} already registered with labels "
                f"{family.label_names}, requested {labels}")
        return family

    # -- introspection ----------------------------------------------------
    def get(self, name: str) -> _Family | None:
        with self._lock:
            return self._families.get(name)

    def families(self) -> list[_Family]:
        with self._lock:
            return [self._families[name] for name in sorted(self._families)]

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._families)

    def snapshot(self) -> dict:
        """JSON-able dump of every family and child (the export substrate)."""
        return {family.name: family.snapshot() for family in self.families()}

    def clear(self) -> None:
        with self._lock:
            self._families.clear()


# ---------------------------------------------------------------------------
# Disabled path: shared no-op singletons, zero allocation per call site.
# ---------------------------------------------------------------------------
class NullMetric:
    """One object standing in for every metric kind when obs is off."""

    __slots__ = ()
    count = 0
    value = 0.0
    sum = 0.0

    def labels(self, **labels) -> "NullMetric":
        return self

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def percentile(self, q: float) -> float:
        return float("nan")


NULL_METRIC = NullMetric()


class NullRegistry:
    """Do-nothing registry returned by :func:`get_registry` when disabled."""

    __slots__ = ()
    enabled = False

    def counter(self, name: str, help: str = "", labels: tuple = ()) -> NullMetric:
        return NULL_METRIC

    def gauge(self, name: str, help: str = "", labels: tuple = ()) -> NullMetric:
        return NULL_METRIC

    def histogram(self, name: str, help: str = "", labels: tuple = (),
                  buckets: tuple = ()) -> NullMetric:
        return NULL_METRIC

    def get(self, name: str) -> None:
        return None

    def families(self) -> list:
        return []

    def names(self) -> list:
        return []

    def snapshot(self) -> dict:
        return {}

    def clear(self) -> None:
        pass


NULL_REGISTRY = NullRegistry()

_registry: MetricsRegistry | None = None
_state_lock = threading.Lock()


def enable(registry: MetricsRegistry | None = None) -> MetricsRegistry:
    """Install (or create) the process-wide registry and switch obs on."""
    global _registry
    with _state_lock:
        if registry is not None:
            _registry = registry
        elif _registry is None:
            _registry = MetricsRegistry()
        return _registry


def disable() -> None:
    """Switch obs off; instrumented call sites fall back to no-ops."""
    global _registry
    with _state_lock:
        _registry = None


def set_registry(registry: MetricsRegistry | None) -> None:
    """Test hook: install an explicit registry (or ``None`` to disable)."""
    global _registry
    with _state_lock:
        _registry = registry


def enabled() -> bool:
    return _registry is not None


def get_registry():
    """The live :class:`MetricsRegistry`, or :data:`NULL_REGISTRY` when off.

    Instrumented code calls this at *use* time (not import time), so
    enabling observability mid-process takes effect everywhere at the
    next operation.
    """
    return _registry if _registry is not None else NULL_REGISTRY


# Opt-in via environment for processes that never touch the CLI flags
# (spawned workers, notebooks): REPRO_OBS=1 enables at import.
if os.environ.get("REPRO_OBS", "").strip() not in ("", "0", "false", "no"):
    enable()
