"""Exporters: Prometheus text exposition, JSON snapshots, and the parser.

``prometheus_text`` serializes a :class:`~repro.obs.metrics.MetricsRegistry`
into the Prometheus text exposition format (version 0.0.4): ``# HELP`` /
``# TYPE`` headers, one sample per line, histograms expanded into
cumulative ``_bucket{le=...}`` series plus ``_sum``/``_count``.

``parse_prometheus`` is the inverse used by tests and the CI smoke: it
re-reads an exposition document into families and *validates* it —
unknown sample suffixes, non-cumulative buckets, or count/sum
disagreements raise :class:`ExpositionError`.  A successful round-trip
through the parser is the format contract.

``flatten_snapshot`` projects a registry snapshot onto a flat
``{name: value}`` dict (histograms contribute ``_count``/``_mean``/
``_p50``/``_p95``/``_max`` entries) — the namespace
:mod:`repro.obs.slo` predicates evaluate against.
"""

from __future__ import annotations

import json
import math
import re
import time

from .metrics import MetricsRegistry

__all__ = ["prometheus_text", "json_snapshot", "parse_prometheus",
           "flatten_snapshot", "ExpositionError", "METRIC_PREFIX"]

METRIC_PREFIX = "repro_"

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>[^\s]+)\s*$")
_LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


class ExpositionError(ValueError):
    """An exposition document failed to parse or validate."""


def _escape(value: str) -> str:
    return (str(value).replace("\\", "\\\\").replace("\n", "\\n")
            .replace('"', '\\"'))


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if isinstance(value, float) and math.isnan(value):
        return "NaN"
    as_float = float(value)
    if as_float == int(as_float) and abs(as_float) < 1e15:
        return str(int(as_float))
    return repr(as_float)


def _label_string(labels: dict, extra: dict | None = None) -> str:
    merged = {**labels, **(extra or {})}
    if not merged:
        return ""
    body = ",".join(f'{key}="{_escape(value)}"'
                    for key, value in sorted(merged.items()))
    return "{" + body + "}"


def prometheus_text(registry: MetricsRegistry,
                    prefix: str = METRIC_PREFIX) -> str:
    """Render the registry in Prometheus text exposition format."""
    lines: list[str] = []
    for family in registry.families():
        name = prefix + family.name
        if not _NAME_RE.match(name):
            raise ExpositionError(f"invalid metric name {name!r}")
        lines.append(f"# HELP {name} {_escape(family.help)}")
        lines.append(f"# TYPE {name} {family.kind}")
        for labels, child in family.series():
            if family.kind in ("counter", "gauge"):
                lines.append(f"{name}{_label_string(labels)} "
                             f"{_format_value(child.value)}")
                continue
            snap = child._snapshot()
            cumulative = 0
            for bound, count in snap["buckets"]:
                cumulative += count
                le = "+Inf" if bound == "+Inf" else _format_value(float(bound))
                lines.append(f"{name}_bucket{_label_string(labels, {'le': le})} "
                             f"{cumulative}")
            lines.append(f"{name}_sum{_label_string(labels)} "
                         f"{_format_value(snap['sum'])}")
            lines.append(f"{name}_count{_label_string(labels)} "
                         f"{snap['count']}")
    return "\n".join(lines) + "\n"


def json_snapshot(registry: MetricsRegistry, **extra) -> dict:
    """JSON-able snapshot document (what ``repro obs snapshot -o`` writes)."""
    return {"format": "repro-obs-snapshot/1",
            "generated_unix": time.time(),
            "metrics": registry.snapshot(),
            **extra}


def write_json_snapshot(registry: MetricsRegistry, path, **extra) -> dict:
    from ..utils.fileio import atomic_write_text

    document = json_snapshot(registry, **extra)
    atomic_write_text(path, json.dumps(document, indent=2, sort_keys=True))
    return document


# ---------------------------------------------------------------------------
# Parsing + validation (tests and the CI golden check)
# ---------------------------------------------------------------------------
def _parse_value(text: str) -> float:
    if text == "+Inf":
        return math.inf
    if text == "-Inf":
        return -math.inf
    try:
        return float(text)
    except ValueError as error:
        raise ExpositionError(f"bad sample value {text!r}") from error


def _unescape(value: str) -> str:
    return (value.replace('\\"', '"').replace("\\n", "\n")
            .replace("\\\\", "\\"))


def parse_prometheus(text: str) -> dict:
    """Parse + validate an exposition document.

    Returns ``{family_name: {"type", "help", "samples"}}`` where each
    sample is ``(sample_name, labels_dict, value)``.  Histogram families
    are checked for cumulative buckets, a ``+Inf`` bucket, and
    bucket/count agreement.
    """
    families: dict[str, dict] = {}
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("# HELP "):
            __, __, rest = line.partition("# HELP ")
            name, __, help_text = rest.partition(" ")
            families.setdefault(name, {"type": None, "help": "",
                                       "samples": []})
            families[name]["help"] = _unescape(help_text)
            continue
        if line.startswith("# TYPE "):
            __, __, rest = line.partition("# TYPE ")
            name, __, kind = rest.partition(" ")
            if kind not in ("counter", "gauge", "histogram", "summary",
                            "untyped"):
                raise ExpositionError(f"line {lineno}: unknown type {kind!r}")
            families.setdefault(name, {"type": None, "help": "",
                                       "samples": []})
            families[name]["type"] = kind
            continue
        if line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ExpositionError(f"line {lineno}: unparsable sample {line!r}")
        sample_name = match.group("name")
        labels = {}
        if match.group("labels"):
            consumed = 0
            for label_match in _LABEL_RE.finditer(match.group("labels")):
                labels[label_match.group(1)] = _unescape(label_match.group(2))
                consumed += 1
            declared = [p for p in match.group("labels").split(",") if p.strip()]
            if consumed != len(declared):
                raise ExpositionError(
                    f"line {lineno}: malformed labels in {line!r}")
        family_name = sample_name
        for suffix in ("_bucket", "_sum", "_count"):
            base = sample_name[:-len(suffix)] if sample_name.endswith(suffix) else None
            if base and base in families and families[base]["type"] == "histogram":
                family_name = base
                break
        if family_name not in families:
            raise ExpositionError(
                f"line {lineno}: sample {sample_name!r} has no # TYPE header")
        families[family_name]["samples"].append(
            (sample_name, labels, _parse_value(match.group("value"))))
    for name, family in families.items():
        if family["type"] is None:
            raise ExpositionError(f"family {name!r} has no # TYPE header")
        if family["type"] == "histogram":
            _validate_histogram(name, family["samples"])
    return families


def _validate_histogram(name: str, samples: list) -> None:
    series: dict[tuple, dict] = {}
    for sample_name, labels, value in samples:
        key = tuple(sorted((k, v) for k, v in labels.items() if k != "le"))
        entry = series.setdefault(key, {"buckets": [], "sum": None,
                                        "count": None})
        if sample_name == f"{name}_bucket":
            if "le" not in labels:
                raise ExpositionError(f"{name}: bucket sample without le label")
            entry["buckets"].append((_parse_value(labels["le"]), value))
        elif sample_name == f"{name}_sum":
            entry["sum"] = value
        elif sample_name == f"{name}_count":
            entry["count"] = value
        else:
            raise ExpositionError(
                f"{name}: unexpected histogram sample {sample_name!r}")
    for key, entry in series.items():
        buckets = sorted(entry["buckets"])
        if not buckets or buckets[-1][0] != math.inf:
            raise ExpositionError(f"{name}: histogram lacks a +Inf bucket")
        counts = [count for __, count in buckets]
        if counts != sorted(counts):
            raise ExpositionError(f"{name}: buckets are not cumulative")
        if entry["count"] is None or entry["sum"] is None:
            raise ExpositionError(f"{name}: missing _count or _sum sample")
        if counts[-1] != entry["count"]:
            raise ExpositionError(
                f"{name}: +Inf bucket ({counts[-1]}) disagrees with _count "
                f"({entry['count']})")


# ---------------------------------------------------------------------------
# Flattening (the SLO predicate namespace)
# ---------------------------------------------------------------------------
def flatten_snapshot(snapshot: dict) -> dict[str, float]:
    """Project a registry snapshot onto flat ``{name: value}`` entries.

    Counters/gauges contribute their family aggregate under the bare
    name plus one ``name{label="value",...}`` entry per labeled child.
    Histograms contribute ``name_count``, ``name_sum``, ``name_mean``,
    ``name_p50``, ``name_p95``, ``name_max`` over the merged series.
    """
    flat: dict[str, float] = {}
    for name, family in snapshot.items():
        kind = family["kind"]
        series = family["series"]
        if kind in ("counter", "gauge"):
            total = 0.0
            for entry in series:
                total += entry["value"]
                if entry["labels"]:
                    label_body = ",".join(
                        f'{k}="{v}"' for k, v in sorted(entry["labels"].items()))
                    flat[f"{name}{{{label_body}}}"] = entry["value"]
            if series:
                flat[name] = total
            continue
        count = sum(entry["count"] for entry in series)
        total = sum(entry["sum"] for entry in series)
        flat[f"{name}_count"] = float(count)
        flat[f"{name}_sum"] = float(total)
        if count:
            flat[f"{name}_mean"] = total / count
            low = min(entry["min"] for entry in series
                      if entry["min"] is not None)
            high = max(entry["max"] for entry in series
                       if entry["max"] is not None)
            flat[f"{name}_max"] = high
            merged = _merge_bucket_counts(series)
            for q in (50.0, 95.0):
                value = _bucket_percentile(merged, count, q)
                flat[f"{name}_p{int(q)}"] = min(max(value, low), high)
    return flat


def _merge_bucket_counts(series: list) -> list[tuple[float, int]]:
    merged: dict[float, int] = {}
    for entry in series:
        for bound, count in entry["buckets"]:
            numeric = math.inf if bound == "+Inf" else float(bound)
            merged[numeric] = merged.get(numeric, 0) + count
    return sorted(merged.items())


def _bucket_percentile(buckets: list[tuple[float, int]], count: int,
                       q: float) -> float:
    rank = (q / 100.0) * count
    cumulative = 0
    previous = 0.0
    for bound, bucket_count in buckets:
        if bucket_count and cumulative + bucket_count >= rank:
            upper = bound if bound != math.inf else previous
            fraction = (rank - cumulative) / bucket_count
            return previous + (upper - previous) * min(max(fraction, 0.0), 1.0)
        cumulative += bucket_count
        if bound != math.inf:
            previous = bound
    return previous
