"""Unified observability: metrics, tracing, exporters, sampling, SLOs.

``repro.obs`` is the process-wide observability layer.  Instrumented
subsystems (serving, training loops, prefetch, checkpointing) publish
into one :class:`MetricsRegistry` and propagate one
:class:`TraceContext` id scheme; exporters, the resource sampler, SLO
evaluation, and the terminal dashboard all read from that registry.

Off by default: until :func:`enable` runs (or ``REPRO_OBS=1`` is set),
every instrumented call site resolves to shared no-op singletons and
the instrumented code paths are bit-identical to uninstrumented ones.

Submodules are imported lazily (PEP 562) so ``import repro`` stays
cheap.
"""

from __future__ import annotations

_LAZY = {
    # metrics
    "Counter": "metrics", "Gauge": "metrics", "Histogram": "metrics",
    "MetricsRegistry": "metrics", "NullMetric": "metrics",
    "NullRegistry": "metrics", "NULL_REGISTRY": "metrics",
    "enable": "metrics", "disable": "metrics", "enabled": "metrics",
    "get_registry": "metrics", "set_registry": "metrics",
    "DEFAULT_LATENCY_BUCKETS_MS": "metrics",
    "DEFAULT_SECONDS_BUCKETS": "metrics",
    # tracing
    "TraceContext": "trace", "SpanRecord": "trace", "TraceLog": "trace",
    "current": "trace", "current_trace_id": "trace",
    "new_context": "trace", "child_context": "trace",
    "set_current": "trace", "reset": "trace", "activate": "trace",
    "span": "trace", "trace_log": "trace",
    # exporters
    "prometheus_text": "export", "json_snapshot": "export",
    "write_json_snapshot": "export", "parse_prometheus": "export",
    "flatten_snapshot": "export", "ExpositionError": "export",
    "METRIC_PREFIX": "export",
    # sampling / SLO / dashboard
    "ResourceSampler": "sampler",
    "SloRule": "slo", "SloRules": "slo", "SloParseError": "slo",
    "GATEWAY_SLO_RULES": "slo",
    "Dashboard": "dashboard",
}

__all__ = sorted(_LAZY)


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    from importlib import import_module

    module = import_module(f".{module_name}", __name__)
    value = getattr(module, name)
    globals()[name] = value
    return value


def __dir__():
    return sorted(set(globals()) | set(_LAZY))
