"""Request-scoped tracing: ids, context propagation, and the span log.

A :class:`TraceContext` is the ``(trace_id, span_id, parent_id)`` triple
every observability-aware subsystem shares.  It lives in a
``contextvars.ContextVar``, so it follows the logical request — through
nested calls, generators, and (explicitly, via :func:`activate`) across
thread boundaries like the serving engine's submit→worker hand-off.

Two integration surfaces:

* :func:`span` — a context manager that derives a child context, makes
  it current, times the region, and (when obs is enabled) appends a
  :class:`SpanRecord` to the process-wide bounded :class:`TraceLog`.
  This is what the serve path uses.
* :func:`child_context` / :func:`set_current` / :func:`reset` — the
  low-level hooks :meth:`repro.telemetry.Run.span` uses so training
  spans mint ids from the same scheme and serve traces opened inside a
  run nest under the run's spans.

Id scheme: ``trace_id`` is 32 hex chars, ``span_id`` 16 hex chars (the
W3C trace-context widths).  Ids are minted from a per-process random
base combined with a shared atomic counter: unique for the life of the
process (the hot serve path opens two spans per request, and ``uuid4``'s
per-call ``os.urandom`` syscall was the single largest obs overhead),
and still globally distinct across processes through the random base.
"""

from __future__ import annotations

import contextvars
import itertools
import random
import threading
import time
from collections import deque

from .metrics import enabled

__all__ = [
    "TraceContext", "SpanRecord", "TraceLog",
    "current", "child_context", "new_context", "set_current", "reset",
    "activate", "span", "record_span", "trace_log", "current_trace_id",
]

TRACE_LOG_CAPACITY = 4096


class TraceContext:
    """One hop of a trace: this span's id plus its lineage.

    A slotted plain class, not a dataclass — one is built per span on
    the serving hot path, and slotted attribute assignment is several
    times cheaper than a frozen dataclass's ``object.__setattr__`` init.
    Treat instances as immutable.
    """

    __slots__ = ("trace_id", "span_id", "parent_id")

    def __init__(self, trace_id: str, span_id: str,
                 parent_id: str | None = None):
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id

    def __repr__(self) -> str:
        return (f"TraceContext(trace_id={self.trace_id!r}, "
                f"span_id={self.span_id!r}, parent_id={self.parent_id!r})")

    def child(self) -> "TraceContext":
        return TraceContext(trace_id=self.trace_id, span_id=_new_span_id(),
                            parent_id=self.span_id)

    def as_dict(self) -> dict:
        return {"trace_id": self.trace_id, "span_id": self.span_id,
                "parent_id": self.parent_id}


# XOR of a fixed random base with a monotone counter is a bijection on
# the masked width, so ids never repeat until the counter wraps (2^64
# spans).  ``itertools.count`` advances atomically under the GIL, which
# keeps minting lock-free for concurrent submitters.
_ID_COUNTER = itertools.count(1)
_TRACE_BASE = random.SystemRandom().getrandbits(128)
_SPAN_BASE = _TRACE_BASE & 0xFFFFFFFFFFFFFFFF


def _new_trace_id() -> str:
    # %-formatting beats format() by ~40% here, and ids are minted twice
    # per serve request.
    return "%032x" % (_TRACE_BASE ^ next(_ID_COUNTER))


def _new_span_id() -> str:
    return "%016x" % (_SPAN_BASE ^ (next(_ID_COUNTER)
                                    & 0xFFFFFFFFFFFFFFFF))


_CURRENT: contextvars.ContextVar[TraceContext | None] = contextvars.ContextVar(
    "repro_obs_trace", default=None)

# Unix-epoch anchor for the monotonic clock: span records carry a
# wall-clock start derived as anchor + perf_counter, saving one clock
# call per span.  Wall/monotonic drift (NTP steps) shifts start_unix
# slightly; durations stay exact because they are pure perf_counter.
_UNIX_ANCHOR = time.time() - time.perf_counter()


def current() -> TraceContext | None:
    """The active trace context of this thread/task, if any."""
    return _CURRENT.get()


def current_trace_id() -> str | None:
    ctx = _CURRENT.get()
    return ctx.trace_id if ctx is not None else None


def new_context() -> TraceContext:
    """A fresh root context (new trace_id, no parent)."""
    return TraceContext(trace_id=_new_trace_id(), span_id=_new_span_id())


def child_context() -> TraceContext:
    """A child of the current context, or a fresh root when none is active."""
    ctx = _CURRENT.get()
    return ctx.child() if ctx is not None else new_context()


def set_current(ctx: TraceContext | None) -> contextvars.Token:
    """Make ``ctx`` current; returns the token for :func:`reset`."""
    return _CURRENT.set(ctx)


def reset(token: contextvars.Token) -> None:
    _CURRENT.reset(token)


class _Activation:
    """Adopt a propagated context (e.g. on the engine's worker thread)."""

    __slots__ = ("_ctx", "_token")

    def __init__(self, ctx: TraceContext | None):
        self._ctx = ctx
        self._token = None

    def __enter__(self) -> TraceContext | None:
        self._token = _CURRENT.set(self._ctx)
        return self._ctx

    def __exit__(self, *exc_info) -> bool:
        _CURRENT.reset(self._token)
        return False


def activate(ctx: TraceContext | None) -> _Activation:
    """``with activate(request.trace):`` — cross-thread propagation."""
    return _Activation(ctx)


class SpanRecord:
    """One completed span as stored in the :class:`TraceLog`.

    Slotted plain class for the same hot-path reason as
    :class:`TraceContext`: two of these are built per serve request.
    """

    __slots__ = ("name", "trace_id", "span_id", "parent_id", "thread",
                 "start_unix", "seconds", "attrs")

    def __init__(self, name: str, trace_id: str, span_id: str,
                 parent_id: str | None, thread: str, start_unix: float,
                 seconds: float, attrs: dict | None = None):
        self.name = name
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.thread = thread
        self.start_unix = start_unix
        self.seconds = seconds
        self.attrs = {} if attrs is None else attrs

    def as_dict(self) -> dict:
        return {"name": self.name, "trace_id": self.trace_id,
                "span_id": self.span_id, "parent_id": self.parent_id,
                "thread": self.thread, "start_unix": self.start_unix,
                "seconds": self.seconds, "attrs": dict(self.attrs)}


class TraceLog:
    """Bounded, thread-safe ring buffer of completed spans."""

    def __init__(self, capacity: int = TRACE_LOG_CAPACITY):
        self._spans: deque[SpanRecord] = deque(maxlen=capacity)
        self._lock = threading.Lock()

    def record(self, record: SpanRecord) -> None:
        with self._lock:
            self._spans.append(record)

    def spans(self, trace_id: str | None = None,
              name: str | None = None) -> list[SpanRecord]:
        with self._lock:
            spans = list(self._spans)
        if trace_id is not None:
            spans = [s for s in spans if s.trace_id == trace_id]
        if name is not None:
            spans = [s for s in spans if s.name == name]
        return spans

    def trace_ids(self) -> list[str]:
        seen: list[str] = []
        for record in self.spans():
            if record.trace_id not in seen:
                seen.append(record.trace_id)
        return seen

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)


_TRACE_LOG = TraceLog()


def trace_log() -> TraceLog:
    """The process-wide span log (bounded; oldest spans fall off)."""
    return _TRACE_LOG


class _NullSpan:
    """Reusable no-op scope for the disabled path."""

    __slots__ = ()
    ctx = None

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class _SpanScope:
    __slots__ = ("name", "attrs", "ctx", "_token", "_start")

    def __init__(self, name: str, attrs: dict):
        self.name = name
        self.attrs = attrs
        self.ctx: TraceContext | None = None
        self._token = None
        self._start = 0.0

    def __enter__(self) -> "_SpanScope":
        self.ctx = child_context()
        self._token = _CURRENT.set(self.ctx)
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        seconds = time.perf_counter() - self._start
        _CURRENT.reset(self._token)
        attrs = self.attrs
        if exc_type is not None:
            attrs = {**attrs, "error": exc_type.__name__}
        ctx = self.ctx
        _TRACE_LOG.record(SpanRecord(
            name=self.name, trace_id=ctx.trace_id,
            span_id=ctx.span_id, parent_id=ctx.parent_id,
            thread=threading.current_thread().name,
            start_unix=_UNIX_ANCHOR + self._start, seconds=seconds,
            attrs=attrs))
        return False


def span(name: str, **attrs):
    """Trace one region: ``with span("engine.submit", kind="encode"):``.

    When obs is disabled this is a shared no-op — no ids are minted, no
    contextvar is touched, nothing is recorded.
    """
    if not enabled():
        return _NULL_SPAN
    return _SpanScope(name, attrs)


def record_span(name: str, ctx: TraceContext, start_perf: float,
                **attrs) -> None:
    """Low-level span emission for per-request hot paths.

    Equivalent to a completed :func:`span` over ``ctx`` that started at
    ``start_perf`` (a ``time.perf_counter`` value), but without the
    scope object, contextvar set/reset, or token — for call sites like
    the batching engine where no nested span ever derives from the
    region, so making the context *current* buys nothing.  The caller
    is responsible for gating on :func:`repro.obs.metrics.enabled`.
    """
    seconds = time.perf_counter() - start_perf
    _TRACE_LOG.record(SpanRecord(
        name=name, trace_id=ctx.trace_id, span_id=ctx.span_id,
        parent_id=ctx.parent_id, thread=threading.current_thread().name,
        start_unix=_UNIX_ANCHOR + start_perf, seconds=seconds, attrs=attrs))
