"""Background process-resource sampling into the metrics registry.

:class:`ResourceSampler` owns a daemon thread that periodically reads
cheap process-level signals — resident memory, cumulative CPU time, GC
activity, thread count, open file descriptors — and publishes them as
gauges, so the ``repro obs`` dashboard and Prometheus scrapes see
resource pressure next to the application counters it explains.

Everything is stdlib: current RSS from ``/proc/self/statm`` where
available (Linux), peak RSS from ``resource.getrusage``, CPU time from
``os.times``, GC totals from ``gc.get_stats``.  One sample is a handful
of syscalls — at the default 0.5 s interval the sampler itself is noise.

``sample_once()`` is public and thread-free for tests and one-shot CLI
snapshots.
"""

from __future__ import annotations

import gc
import os
import threading
import time

from .metrics import get_registry

__all__ = ["ResourceSampler"]

_PAGE_SIZE = os.sysconf("SC_PAGE_SIZE") if hasattr(os, "sysconf") else 4096
_STATM = "/proc/self/statm"
# ru_maxrss is KiB on Linux, bytes on macOS.
_MAXRSS_UNIT = 1024 if not os.uname().sysname == "Darwin" else 1


def _resident_bytes() -> float | None:
    """Current RSS in bytes (None where /proc is unavailable)."""
    try:
        with open(_STATM, "r", encoding="ascii") as handle:
            fields = handle.read().split()
        return float(fields[1]) * _PAGE_SIZE
    except (OSError, IndexError, ValueError):
        return None


def _open_fds() -> float | None:
    try:
        return float(len(os.listdir("/proc/self/fd")))
    except OSError:
        return None


class ResourceSampler:
    """Periodic resource gauges; start/stop or use as a context manager."""

    def __init__(self, interval: float = 0.5, registry=None):
        if interval <= 0:
            raise ValueError("interval must be > 0")
        self.interval = interval
        self._registry = registry
        self._thread: threading.Thread | None = None
        self._stop = threading.Event()
        self._started_unix = time.time()
        self.samples_taken = 0

    @property
    def registry(self):
        return self._registry if self._registry is not None else get_registry()

    # -- one sample -------------------------------------------------------
    def sample_once(self) -> None:
        """Read every signal once and publish the gauges."""
        registry = self.registry
        rss = _resident_bytes()
        if rss is not None:
            registry.gauge("process_resident_bytes",
                           "Current resident set size").set(rss)
        try:
            import resource

            usage = resource.getrusage(resource.RUSAGE_SELF)
            registry.gauge("process_max_resident_bytes",
                           "Peak resident set size").set(
                usage.ru_maxrss * _MAXRSS_UNIT)
        except (ImportError, ValueError):
            pass
        times = os.times()
        registry.gauge("process_cpu_seconds_total",
                       "Cumulative user+system CPU seconds").set(
            times.user + times.system)
        registry.gauge("process_threads", "Live Python threads").set(
            threading.active_count())
        registry.gauge("process_uptime_seconds",
                       "Seconds since the sampler started").set(
            time.time() - self._started_unix)
        fds = _open_fds()
        if fds is not None:
            registry.gauge("process_open_fds",
                           "Open file descriptors").set(fds)
        collections = registry.gauge("process_gc_collections_total",
                                     "GC runs per generation",
                                     labels=("generation",))
        collected = registry.gauge("process_gc_collected_total",
                                   "Objects collected per generation",
                                   labels=("generation",))
        for generation, stats in enumerate(gc.get_stats()):
            collections.labels(generation=str(generation)).set(
                stats.get("collections", 0))
            collected.labels(generation=str(generation)).set(
                stats.get("collected", 0))
        registry.gauge("process_gc_tracked_objects",
                       "Objects currently tracked by the collector "
                       "(sum of generation counts)").set(sum(gc.get_count()))
        self.samples_taken += 1

    # -- lifecycle --------------------------------------------------------
    def start(self) -> "ResourceSampler":
        """Launch the sampling thread (idempotent)."""
        if self._thread is None:
            self._stop.clear()
            self._started_unix = time.time()
            self._thread = threading.Thread(target=self._loop,
                                            name="repro-obs-sampler",
                                            daemon=True)
            self._thread.start()
        return self

    def stop(self) -> None:
        thread = self._thread
        if thread is None:
            return
        self._stop.set()
        thread.join(timeout=5.0)
        self._thread = None

    def _loop(self) -> None:
        while not self._stop.is_set():
            self.sample_once()
            self._stop.wait(self.interval)

    @property
    def running(self) -> bool:
        return self._thread is not None

    def __enter__(self) -> "ResourceSampler":
        return self.start()

    def __exit__(self, *exc_info) -> bool:
        self.stop()
        return False
