"""SLO rules: metric predicates evaluated against the live registry.

A rule is one comparison over the flattened metric namespace
(:func:`repro.obs.export.flatten_snapshot`), written the way you'd say
it::

    serve_request_ms_p95 < 10
    serve_cache_hit_rate > 0.3
    process_resident_bytes < 2e9

:class:`SloRules` parses a list of such strings, evaluates them against
a registry snapshot, and emits a structured ``alert`` event onto the
telemetry run spine for every violation — so an SLO breach lands in the
same ``events.jsonl`` (and ``repro runs tail``) as health findings and
checkpoint saves.  A metric that does not exist yet evaluates to
*unknown* (neither pass nor violation), because "no traffic yet" must
not page anyone.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from .export import flatten_snapshot
from .metrics import get_registry

__all__ = ["SloRule", "SloRules", "SloParseError", "GATEWAY_SLO_RULES"]

#: Default SLO predicates for a serving gateway (``repro serve
#: --gateway``).  Names follow :func:`~repro.obs.export.flatten_snapshot`:
#: labeled counter children flatten to ``name{label="value"}`` and
#: histograms to ``name_p95`` etc.  The rules encode the robustness
#: contract: accepted-request latency stays bounded (shedding is how —
#: sheds themselves are *not* violations), the breaker is not stuck
#: open, and degraded answers stay the exception.
GATEWAY_SLO_RULES = (
    "gateway_request_ms_p95 < 250",
    "gateway_breaker_state < 2",
    "gateway_shed_total{reason=\"deadline\"} == 0",
    "gateway_degraded_total < 100",
)


class SloParseError(ValueError):
    """A rule string did not parse as ``metric OP number``."""


_OPS = {
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
}

_RULE_RE = re.compile(
    r"^\s*(?P<metric>[a-zA-Z_:][a-zA-Z0-9_:]*(?:\{[^}]*\})?)\s*"
    r"(?P<op><=|>=|==|!=|<|>)\s*"
    r"(?P<threshold>[-+]?(?:\d+\.?\d*|\.\d+)(?:[eE][-+]?\d+)?)\s*$")


@dataclass(frozen=True)
class SloRule:
    """One parsed predicate."""

    metric: str
    op: str
    threshold: float
    raw: str

    @classmethod
    def parse(cls, text: str) -> "SloRule":
        match = _RULE_RE.match(text)
        if match is None:
            raise SloParseError(
                f"cannot parse SLO rule {text!r} (expected "
                f"'<metric> <op> <number>', e.g. 'serve_request_ms_p95 < 10')")
        return cls(metric=match.group("metric"), op=match.group("op"),
                   threshold=float(match.group("threshold")),
                   raw=text.strip())

    def check(self, flat: dict[str, float]) -> dict:
        """Evaluate against a flattened snapshot → structured verdict."""
        value = flat.get(self.metric)
        if value is None:
            status = "unknown"
        else:
            status = "ok" if _OPS[self.op](value, self.threshold) else "violated"
        return {"rule": self.raw, "metric": self.metric, "op": self.op,
                "threshold": self.threshold, "value": value, "status": status}


class SloRules:
    """A rule set: parse once, evaluate repeatedly, alert on violations."""

    def __init__(self, rules):
        self.rules = [rule if isinstance(rule, SloRule) else SloRule.parse(rule)
                      for rule in rules]

    def __len__(self) -> int:
        return len(self.rules)

    def evaluate(self, registry=None, run=None) -> list[dict]:
        """Check every rule against ``registry`` (default: the process one).

        When ``run`` is an enabled telemetry run, every violation emits a
        structured ``alert`` event onto its spine.
        """
        registry = registry if registry is not None else get_registry()
        flat = flatten_snapshot(registry.snapshot())
        results = [rule.check(flat) for rule in self.rules]
        if run is not None and getattr(run, "enabled", False):
            for result in results:
                if result["status"] == "violated":
                    run.emit("alert", check="slo", **result)
        return results

    def violations(self, registry=None, run=None) -> list[dict]:
        return [r for r in self.evaluate(registry, run=run)
                if r["status"] == "violated"]
