"""Command-line interface: regenerate any paper table/figure directly.

Examples::

    python -m repro table3 --datasets ETTh1 Exchange --scale smoke
    python -m repro table5 --scale default --output results/
    python -m repro fig6 --scale smoke
    python -m repro profile --steps 20 --sort-by self_s
    python -m repro list
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

from .experiments import (
    augmentation_ablation,
    backbone_ablation,
    classification_table,
    forecasting_table,
    get_scale,
    lambda_sensitivity,
    pooling_ablation,
    semi_supervised_classification,
    semi_supervised_forecasting,
    stop_gradient_ablation,
    training_time_table,
)

__all__ = ["main", "build_parser", "EXPERIMENTS"]

_FORECAST_DATASETS = ("ETTh1", "ETTh2", "ETTm1", "ETTm2", "Exchange", "Weather")
_CLASS_DATASETS = ("FingerMovements", "PenDigits", "HAR", "Epilepsy", "WISDM")


def _run_table3(args, preset):
    return forecasting_table(datasets=tuple(args.datasets or _FORECAST_DATASETS),
                             univariate=False, preset=preset, seed=args.seed)


def _run_table4(args, preset):
    return forecasting_table(datasets=tuple(args.datasets or _FORECAST_DATASETS),
                             univariate=True, preset=preset, seed=args.seed)


def _run_table5(args, preset):
    return classification_table(datasets=tuple(args.datasets or _CLASS_DATASETS),
                                preset=preset, seed=args.seed)


def _run_table6(args, preset):
    return augmentation_ablation(datasets=tuple(args.datasets or ("ETTh1", "Exchange")),
                                 preset=preset, seed=args.seed)


def _run_table7(args, preset):
    return pooling_ablation(datasets=tuple(args.datasets or ("FingerMovements", "Epilepsy")),
                            preset=preset, seed=args.seed)


def _run_table8(args, preset):
    return backbone_ablation(datasets=tuple(args.datasets or ("ETTh1", "Exchange")),
                             preset=preset, seed=args.seed)


def _run_table9(args, preset):
    return stop_gradient_ablation(
        datasets=tuple(args.datasets or ("FingerMovements", "Epilepsy")),
        preset=preset, seed=args.seed)


def _run_fig4(args, preset):
    return training_time_table(datasets=tuple(args.datasets or ("ETTh1", "Exchange")),
                               preset=preset, seed=args.seed)


def _run_fig5(args, preset):
    return {
        "forecasting": semi_supervised_forecasting(
            datasets=tuple(args.datasets or ("ETTh1",)), preset=preset, seed=args.seed),
        "classification": semi_supervised_classification(
            datasets=("Epilepsy",), preset=preset, seed=args.seed),
    }


def _run_fig6(args, preset):
    return lambda_sensitivity(preset=preset, seed=args.seed)


EXPERIMENTS = {
    "table3": (_run_table3, "Table III: multivariate forecasting linear evaluation"),
    "table4": (_run_table4, "Table IV: univariate forecasting linear evaluation"),
    "table5": (_run_table5, "Table V: classification linear evaluation"),
    "table6": (_run_table6, "Table VI: data-augmentation ablation"),
    "table7": (_run_table7, "Table VII: pooling-method ablation"),
    "table8": (_run_table8, "Table VIII: backbone-encoder ablation"),
    "table9": (_run_table9, "Table IX: stop-gradient ablation"),
    "fig4": (_run_fig4, "Fig. 4: pre-training wall-clock comparison"),
    "fig5": (_run_fig5, "Fig. 5: semi-supervised learning curves"),
    "fig6": (_run_fig6, "Fig. 6: lambda sensitivity"),
}


def _run_profile(args) -> int:
    """``repro profile`` — op-level profile of a short pre-training run."""
    import numpy as np

    from .core.config import PretrainConfig, TimeDRLConfig
    from .core.pretrain import pretrain
    from .nn import use_fused
    from .utils.training import format_profile

    model_config = TimeDRLConfig(seq_len=args.seq_len, input_channels=args.channels,
                                 seed=args.seed)
    train_config = PretrainConfig(epochs=1, batch_size=args.batch_size,
                                  max_batches_per_epoch=args.steps,
                                  profile=True, seed=args.seed)
    rng = np.random.default_rng(args.seed)
    samples = rng.standard_normal(
        (args.steps * args.batch_size, args.seq_len, args.channels)).astype(np.float32)
    with use_fused(not args.unfused):
        result = pretrain(model_config, samples, train_config)
    kernels = "reference (unfused)" if args.unfused else "fused"
    print(f"profiled {args.steps} pre-training steps "
          f"(batch={args.batch_size}, T={args.seq_len}, C={args.channels}, "
          f"{kernels} kernels) in {result.wall_clock_seconds:.3f}s")
    print(format_profile(result.profile, sort_by=args.sort_by, limit=args.limit))
    if args.output is not None:
        args.output.parent.mkdir(parents=True, exist_ok=True)
        args.output.write_text(json.dumps(result.profile, indent=2) + "\n")
        print(f"wrote {args.output}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate tables/figures of the TimeDRL paper (ICDE 2024).")
    sub = parser.add_subparsers(dest="experiment", required=True)
    list_parser = sub.add_parser("list", help="list available experiments")
    list_parser.set_defaults(experiment="list")
    prof = sub.add_parser(
        "profile", help="op-level profile of a short synthetic pre-training run")
    prof.set_defaults(experiment="profile")
    prof.add_argument("--steps", type=int, default=10, help="training steps to profile")
    prof.add_argument("--batch-size", type=int, default=8)
    prof.add_argument("--seq-len", type=int, default=128)
    prof.add_argument("--channels", type=int, default=7)
    prof.add_argument("--sort-by", choices=("count", "total_s", "self_s", "bytes"),
                      default="total_s")
    prof.add_argument("--limit", type=int, default=25, help="max rows to print")
    prof.add_argument("--unfused", action="store_true",
                      help="profile the reference (unfused) kernels instead")
    prof.add_argument("--seed", type=int, default=0)
    prof.add_argument("--output", type=pathlib.Path, default=None,
                      help="write the raw op stats as JSON to this file")
    for name, (__, description) in EXPERIMENTS.items():
        exp = sub.add_parser(name, help=description)
        exp.add_argument("--scale", choices=("smoke", "default", "full"),
                         default=None, help="scale preset (default: env or 'default')")
        exp.add_argument("--datasets", nargs="*", default=None,
                         help="override the experiment's dataset list")
        exp.add_argument("--seed", type=int, default=0)
        exp.add_argument("--output", type=pathlib.Path, default=None,
                         help="directory to write markdown tables into")
    return parser


def _emit(result, name: str, output: pathlib.Path | None) -> None:
    tables = result if isinstance(result, dict) else {"": result}
    for key, table in tables.items():
        table.print()
        if output is not None:
            output.mkdir(parents=True, exist_ok=True)
            suffix = f"_{key.lower()}" if key else ""
            path = output / f"{name}{suffix}.md"
            path.write_text(table.to_markdown() + "\n")
            print(f"wrote {path}")


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.experiment == "list":
        for name, (__, description) in EXPERIMENTS.items():
            print(f"{name:8} {description}")
        return 0
    if args.experiment == "profile":
        return _run_profile(args)
    runner, __ = EXPERIMENTS[args.experiment]
    preset = get_scale(args.scale)
    print(f"running {args.experiment} at scale {preset.name!r}")
    result = runner(args, preset)
    _emit(result, args.experiment, args.output)
    return 0


if __name__ == "__main__":
    sys.exit(main())
