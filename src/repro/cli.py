"""Command-line interface: regenerate any paper table/figure directly.

Examples::

    python -m repro table3 --datasets ETTh1 Exchange --scale smoke
    python -m repro table5 --scale default --output results/
    python -m repro fig6 --scale smoke
    python -m repro profile --steps 20 --sort-by self_s
    python -m repro pretrain --synthetic 2048 --epochs 2 --workers 2
    python -m repro finetune --from results/ckpt --dataset ETTh1
    python -m repro transfer --source ETTh1 --target ETTh2 --scale smoke
    python -m repro table3 --datasets ETTh1 --checkpoint results/ckpt --resume
    python -m repro serve --checkpoint results/ckpt/ETTh1 --repeats 2 --report report.json
    python -m repro data build --tier smallest --root results/data
    python -m repro data info results/data/smallest
    python -m repro data verify results/data/smallest
    python -m repro runs list
    python -m repro runs show 20260806-120301-a1b2c3 --svg losses.svg
    python -m repro runs resume 20260806-120301-a1b2c3
    python -m repro runs diff <run_a> <run_b>
    python -m repro list
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

from .experiments import (
    augmentation_ablation,
    backbone_ablation,
    classification_table,
    forecasting_table,
    get_scale,
    lambda_sensitivity,
    pooling_ablation,
    semi_supervised_classification,
    semi_supervised_forecasting,
    stop_gradient_ablation,
    training_time_table,
)
from .telemetry import (
    NULL_RUN,
    Run,
    console_log,
    diff_runs,
    find_run,
    list_runs,
    loss_curve_svg,
    tail_events,
)

__all__ = ["main", "build_parser", "EXPERIMENTS"]

_FORECAST_DATASETS = ("ETTh1", "ETTh2", "ETTm1", "ETTm2", "Exchange", "Weather")
_CLASS_DATASETS = ("FingerMovements", "PenDigits", "HAR", "Epilepsy", "WISDM")
_DEFAULT_RUN_ROOT = pathlib.Path("results/runs")


def _checkpoint_from_args(args):
    """Build a CheckpointConfig from ``--checkpoint``/``--resume`` flags
    (``None`` when neither is given — checkpointing stays off)."""
    from .checkpoint import CheckpointConfig

    directory = getattr(args, "checkpoint", None)
    resume = bool(getattr(args, "resume", False))
    if directory is None and not resume:
        return None
    return CheckpointConfig(directory=str(directory) if directory else None,
                            resume=resume)


def _runtime_from_args(args):
    """Fold the CLI's runtime flags into the shared RuntimeOptions bundle
    every driver accepts (telemetry run creation stays in ``main``, which
    owns the Run object's lifecycle)."""
    from .core import RuntimeOptions

    return RuntimeOptions(
        telemetry=bool(getattr(args, "telemetry", False)),
        run_root=str(getattr(args, "run_root", _DEFAULT_RUN_ROOT)),
        checkpoint=_checkpoint_from_args(args))


def _run_table3(args, preset, run=NULL_RUN):
    return forecasting_table(datasets=tuple(args.datasets or _FORECAST_DATASETS),
                             univariate=False, preset=preset, seed=args.seed,
                             run=run, runtime=_runtime_from_args(args))


def _run_table4(args, preset, run=NULL_RUN):
    return forecasting_table(datasets=tuple(args.datasets or _FORECAST_DATASETS),
                             univariate=True, preset=preset, seed=args.seed,
                             run=run, runtime=_runtime_from_args(args))


def _run_table5(args, preset, run=NULL_RUN):
    return classification_table(datasets=tuple(args.datasets or _CLASS_DATASETS),
                                preset=preset, seed=args.seed, run=run,
                                runtime=_runtime_from_args(args))


def _run_table6(args, preset, run=NULL_RUN):
    return augmentation_ablation(datasets=tuple(args.datasets or ("ETTh1", "Exchange")),
                                 preset=preset, seed=args.seed)


def _run_table7(args, preset, run=NULL_RUN):
    return pooling_ablation(datasets=tuple(args.datasets or ("FingerMovements", "Epilepsy")),
                            preset=preset, seed=args.seed)


def _run_table8(args, preset, run=NULL_RUN):
    return backbone_ablation(datasets=tuple(args.datasets or ("ETTh1", "Exchange")),
                             preset=preset, seed=args.seed)


def _run_table9(args, preset, run=NULL_RUN):
    return stop_gradient_ablation(
        datasets=tuple(args.datasets or ("FingerMovements", "Epilepsy")),
        preset=preset, seed=args.seed)


def _run_fig4(args, preset, run=NULL_RUN):
    return training_time_table(datasets=tuple(args.datasets or ("ETTh1", "Exchange")),
                               preset=preset, seed=args.seed)


def _run_fig5(args, preset, run=NULL_RUN):
    return {
        "forecasting": semi_supervised_forecasting(
            datasets=tuple(args.datasets or ("ETTh1",)), preset=preset,
            seed=args.seed, run=run),
        "classification": semi_supervised_classification(
            datasets=("Epilepsy",), preset=preset, seed=args.seed, run=run),
    }


def _run_fig6(args, preset, run=NULL_RUN):
    return lambda_sensitivity(preset=preset, seed=args.seed)


EXPERIMENTS = {
    "table3": (_run_table3, "Table III: multivariate forecasting linear evaluation"),
    "table4": (_run_table4, "Table IV: univariate forecasting linear evaluation"),
    "table5": (_run_table5, "Table V: classification linear evaluation"),
    "table6": (_run_table6, "Table VI: data-augmentation ablation"),
    "table7": (_run_table7, "Table VII: pooling-method ablation"),
    "table8": (_run_table8, "Table VIII: backbone-encoder ablation"),
    "table9": (_run_table9, "Table IX: stop-gradient ablation"),
    "fig4": (_run_fig4, "Fig. 4: pre-training wall-clock comparison"),
    "fig5": (_run_fig5, "Fig. 5: semi-supervised learning curves"),
    "fig6": (_run_fig6, "Fig. 6: lambda sensitivity"),
}


def _run_profile_inference(args) -> int:
    """``repro profile --no-grad`` — profile the inference forward only.

    ``--compiled [fp32|int8]`` profiles the packed hot path instead of
    the fused autograd forward; its per-op rows (``packed.*``) line up
    with the training profile's op names for side-by-side comparison
    (see docs/inference.md).
    """
    import time

    import numpy as np

    from .core.config import TimeDRLConfig
    from .core.model import TimeDRL
    from .nn import no_grad, profiler, use_fused
    from .utils.training import format_profile

    model_config = TimeDRLConfig(seq_len=args.seq_len,
                                 input_channels=args.channels, seed=args.seed)
    model = TimeDRL(model_config)
    model.eval()
    rng = np.random.default_rng(args.seed)
    batch = rng.standard_normal(
        (args.batch_size, args.seq_len, args.channels)).astype(np.float32)
    if args.compiled is not None:
        from .compile import CompileOptions, compile_model

        target, __ = compile_model(
            model, CompileOptions(precision=args.compiled), calibration=batch)
        label = f"compiled {target.kind}"
        encode = target.encode
    else:
        label = ("reference (unfused)" if args.unfused else "fused") + " no_grad"

        def encode(x):
            with no_grad():
                return model.encode(x)

    started = time.perf_counter()
    with use_fused(not args.unfused), profiler.profile() as prof:
        for __ in range(args.steps):
            encode(batch)
    elapsed = time.perf_counter() - started
    console_log(f"profiled {args.steps} {label} encode passes "
                f"(batch={args.batch_size}, T={args.seq_len}, "
                f"C={args.channels}) in {elapsed:.3f}s")
    stats = prof.snapshot()
    console_log(format_profile(stats, sort_by=args.sort_by, limit=args.limit))
    if args.output is not None:
        args.output.parent.mkdir(parents=True, exist_ok=True)
        args.output.write_text(json.dumps(stats, indent=2) + "\n")
        console_log(f"wrote {args.output}")
    return 0


def _run_profile(args) -> int:
    """``repro profile`` — op-level profile of a short pre-training run."""
    import numpy as np

    from .core.config import PretrainConfig, TimeDRLConfig
    from .core.pretrain import run_pretrain
    from .nn import use_fused
    from .utils.training import format_profile

    if args.no_grad or args.compiled is not None:
        return _run_profile_inference(args)
    model_config = TimeDRLConfig(seq_len=args.seq_len, input_channels=args.channels,
                                 seed=args.seed)
    train_config = PretrainConfig(epochs=1, batch_size=args.batch_size,
                                  max_batches_per_epoch=args.steps,
                                  profile=True, seed=args.seed)
    rng = np.random.default_rng(args.seed)
    samples = rng.standard_normal(
        (args.steps * args.batch_size, args.seq_len, args.channels)).astype(np.float32)
    with use_fused(not args.unfused):
        result = run_pretrain(model_config, samples, train_config)
    kernels = "reference (unfused)" if args.unfused else "fused"
    console_log(f"profiled {args.steps} pre-training steps "
                f"(batch={args.batch_size}, T={args.seq_len}, C={args.channels}, "
                f"{kernels} kernels) in {result.wall_clock_seconds:.3f}s")
    console_log(format_profile(result.profile, sort_by=args.sort_by, limit=args.limit))
    if args.output is not None:
        args.output.parent.mkdir(parents=True, exist_ok=True)
        args.output.write_text(json.dumps(result.profile, indent=2) + "\n")
        console_log(f"wrote {args.output}")
    return 0


# ----------------------------------------------------------------------
# ``repro compile`` — checkpoint → packed (int8/fp32) serving artifact
# ----------------------------------------------------------------------
def _run_compile(args) -> int:
    """``repro compile`` — quantize/distill a checkpoint into a compiled
    artifact servable behind a registry alias (exit 4 when the measured
    drift exceeds ``--max-abs-diff``)."""
    from .checkpoint.manager import CheckpointError
    from .compile import (
        CompileError,
        CompileOptions,
        DistillConfig,
        compile_checkpoint,
    )

    options = CompileOptions(
        precision="fp32" if args.fp32 else "int8",
        exact_gelu=True if args.exact_gelu else None,
        error_budget=args.layer_error_budget)
    distill = None
    if args.distill:
        distill = DistillConfig(
            d_model=args.student_d_model,
            num_layers=args.student_layers,
            num_heads=args.student_heads,
            epochs=args.distill_epochs,
            batch_size=args.distill_batch_size,
            learning_rate=args.distill_lr,
            seed=args.seed)
    try:
        path, compiled, report = compile_checkpoint(
            args.source, options,
            calibrate=args.calibrate,
            calibration_windows=args.windows,
            distill=distill,
            output=args.output,
            run_root=str(args.run_root),
            seed=args.seed,
            log=console_log)
    except (CompileError, CheckpointError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    console_log(f"compiled {compiled.kind} artifact: {path} "
                f"({report['artifact_bytes']} bytes, "
                f"fingerprint={compiled.fingerprint[:12]})")
    console_log(f"quantized {report['quantized_layers']}/"
                f"{report['total_layers']} linear layers "
                f"(calibration: {report['calibration_windows']} windows)")
    for decision in report["layers"]:
        if not decision["quantized"]:
            console_log(f"  kept fp32: {decision['name']} "
                        f"({decision['reason']})")
    diff = report.get("max_abs_diff")
    if diff is not None:
        console_log("max_abs_diff vs fp reference: "
                    f"timestamp={diff['timestamp']:.3g} "
                    f"instance={diff['instance']:.3g} "
                    f"scores={diff['scores']:.3g}")
    if report.get("distill_history"):
        losses = ", ".join(f"{epoch['total']:.4f}"
                           for epoch in report["distill_history"])
        console_log(f"distillation loss per epoch: {losses}")
    if args.report is not None:
        args.report.parent.mkdir(parents=True, exist_ok=True)
        args.report.write_text(json.dumps(report, indent=2) + "\n")
        console_log(f"wrote {args.report}")
    if args.max_abs_diff > 0 and diff is not None:
        worst = max(diff["timestamp"], diff["instance"])
        if worst > args.max_abs_diff:
            console_log(f"tolerance gate FAILED: embedding drift {worst:.3g} "
                        f"> --max-abs-diff {args.max_abs_diff:.3g} "
                        f"(artifact kept at {path} for inspection)")
            return 4
        console_log(f"tolerance gate passed: {worst:.3g} <= "
                    f"{args.max_abs_diff:.3g}")
    return 0


# ----------------------------------------------------------------------
# ``repro pretrain|finetune|transfer`` — the unified training driver
# ----------------------------------------------------------------------
def _add_training_flags(parser, workers_help="data-parallel pre-training "
                                             "workers (1 = in-process)"):
    """The normalized training flag set.

    Every training-capable subcommand (``pretrain``, ``finetune``,
    ``transfer``) spells and defaults these identically — locked by
    ``tests/train/test_cli_flags.py``.  ``serve`` shares the
    ``--telemetry``/``--run-root`` pair."""
    parser.add_argument("--checkpoint", type=pathlib.Path, default=None,
                        metavar="DIR",
                        help="checkpoint training state under DIR")
    parser.add_argument("--resume", action="store_true",
                        help="resume from the newest valid checkpoint "
                             "under --checkpoint")
    parser.add_argument("--telemetry", action="store_true",
                        help="record the session as a telemetry run")
    parser.add_argument("--run-root", type=pathlib.Path,
                        default=_DEFAULT_RUN_ROOT,
                        help="where --telemetry writes the run directory")
    parser.add_argument("--prefetch", action="store_true",
                        help="stage batches through a background prefetch "
                             "loader")
    parser.add_argument("--workers", type=int, default=1, help=workers_help)


def _training_options(args, **extra):
    """:class:`repro.train.TrainOptions` from the normalized flags.

    Absent flags map to ``None`` ("no opinion"), so facade defaults and
    checkpoint metadata stay authoritative."""
    from .train import TrainOptions

    workers = getattr(args, "workers", 1)
    return TrainOptions(
        checkpoint=_checkpoint_from_args(args),
        telemetry=True if args.telemetry else None,
        prefetch=True if getattr(args, "prefetch", False) else None,
        run_root=str(args.run_root) if args.telemetry else None,
        distributed=workers if workers and workers > 1 else None,
        **extra)


def _pretrain_overrides(args) -> dict:
    """PretrainConfig overrides from the optimisation flags (only the
    flags actually given — driver defaults stay authoritative)."""
    overrides = {"seed": args.seed}
    if args.epochs is not None:
        overrides["epochs"] = args.epochs
    if args.batch_size is not None:
        overrides["batch_size"] = args.batch_size
    if args.lr is not None:
        overrides["learning_rate"] = args.lr
    if getattr(args, "max_batches", None) is not None:
        overrides["max_batches_per_epoch"] = args.max_batches
    return overrides


def _run_pretrain_cmd(args) -> int:
    """``repro pretrain`` — self-supervised pre-training through
    :class:`repro.train.TrainSession`, optionally data-parallel."""
    import numpy as np

    from .core.config import PretrainConfig, TimeDRLConfig
    from .data import resolve_data_source, synthetic_windows_spec
    from .train import TrainSession

    if (args.data is None) == (not args.synthetic):
        print("error: pass exactly one of --data or --synthetic N",
              file=sys.stderr)
        return 1
    if args.data is not None:
        if args.data.is_file():
            payload = np.load(args.data)
            data = (payload if isinstance(payload, np.ndarray)
                    else payload[list(payload.keys())[0]])
        else:
            data = args.data  # store directory: opened by the driver
        probe = resolve_data_source(data)
        sample = (probe.batch(np.array([0])) if hasattr(probe, "batch")
                  else np.asarray(probe)[:1])
        __, seq_len, channels = sample.shape
        if hasattr(probe, "close") and probe is not data:
            probe.close()
    else:
        seq_len, channels = args.seq_len, args.channels
        data = synthetic_windows_spec(windows=args.synthetic,
                                      seq_len=seq_len, channels=channels,
                                      seed=args.seed)
    model_config = TimeDRLConfig(
        seq_len=seq_len, input_channels=channels, patch_len=args.patch_len,
        stride=args.patch_len, d_model=args.d_model,
        num_layers=args.num_layers, num_heads=args.num_heads,
        dropout=args.dropout, enable_contrastive=not args.no_contrastive,
        channel_independence=args.channel_independence, seed=args.seed)
    options = _training_options(args)
    options.pretrain = PretrainConfig(**_pretrain_overrides(args))
    result = TrainSession(model_config).pretrain(data, options=options)
    console_log(f"pre-trained {len(result.history)} epoch(s) in "
                f"{result.wall_clock_seconds:.2f}s "
                f"(world_size={result.world_size}, "
                f"restarts={result.worker_restarts}) "
                f"final_total={result.final_loss:.6f}")
    if result.run_id is not None:
        console_log(f"recorded run {result.run_id}")
    if args.history_json is not None:
        args.history_json.parent.mkdir(parents=True, exist_ok=True)
        args.history_json.write_text(json.dumps(
            {"history": result.history,
             "world_size": result.world_size,
             "worker_restarts": result.worker_restarts,
             "wall_clock_seconds": result.wall_clock_seconds},
            indent=2) + "\n")
        console_log(f"wrote {args.history_json}")
    return 0


def _run_finetune_cmd(args) -> int:
    """``repro finetune`` — fine-tune a (pre-trained or fresh) model on a
    named dataset through :class:`repro.train.TrainSession`."""
    from .data import CLASSIFICATION_DATASETS, FORECASTING_DATASETS
    from .experiments import get_scale
    from .train import TrainSession

    preset = get_scale(args.scale)
    if args.dataset in FORECASTING_DATASETS:
        from .experiments.forecasting import (
            prepare_forecasting_data,
            timedrl_config_for,
        )

        task = "forecasting"
        prepared = prepare_forecasting_data(args.dataset, preset,
                                            seed=args.seed)
        horizon = min(prepared["horizons"])
        data = prepared["horizons"][horizon]
        config = timedrl_config_for(prepared["n_features"], preset,
                                    seed=args.seed)
    elif args.dataset in CLASSIFICATION_DATASETS:
        from .experiments.classification import (
            prepare_classification_data,
            timedrl_classification_config,
        )

        task = "classification"
        data = prepare_classification_data(args.dataset, preset,
                                           seed=args.seed)
        config = timedrl_classification_config(args.dataset, preset,
                                               seed=args.seed)
    else:
        known = ", ".join((*FORECASTING_DATASETS, *CLASSIFICATION_DATASETS))
        print(f"error: unknown dataset {args.dataset!r} (known: {known})",
              file=sys.stderr)
        return 1
    if args.workers > 1:
        console_log("note: fine-tuning is single-process; --workers applies "
                    "to pre-training only")
    options = _training_options(
        args, label_fraction=args.label_fraction, epochs=args.epochs,
        batch_size=args.batch_size, learning_rate=args.lr, seed=args.seed)
    options.distributed = None
    if args.source_checkpoint is not None:
        session = TrainSession.from_checkpoint(args.source_checkpoint,
                                               options=options)
        loaded = session.model_config
        if (task == "forecasting" and not loaded.channel_independence
                and prepared["n_features"] > 1):
            print(f"error: checkpoint {args.source_checkpoint} was "
                  f"pre-trained without channel independence; its "
                  f"channel-mixing head cannot forecast the "
                  f"{prepared['n_features']}-variate {args.dataset} "
                  f"(re-run `repro pretrain` with --channel-independence)",
                  file=sys.stderr)
            return 1
    else:
        session = TrainSession(config, options=options)
    result = session.finetune(data, task=task)
    if task == "forecasting":
        console_log(f"finetune complete ({args.dataset}, horizon={horizon}): "
                    f"mse={result.mse:.4f} mae={result.mae:.4f}")
    else:
        console_log(f"finetune complete ({args.dataset}): "
                    f"accuracy={result.accuracy:.2f} "
                    f"macro_f1={result.macro_f1:.2f}")
    return 0


def _run_transfer_cmd(args) -> int:
    """``repro transfer`` — pre-train on one forecasting dataset, probe the
    frozen encoder on another (:meth:`TrainSession.transfer`)."""
    from .core.config import PretrainConfig
    from .experiments import get_scale
    from .experiments.forecasting import (
        prepare_forecasting_data,
        timedrl_config_for,
    )
    from .train import TrainSession

    preset = get_scale(args.scale)
    source = prepare_forecasting_data(args.source, preset, seed=args.seed)
    target = prepare_forecasting_data(args.target, preset, seed=args.seed)
    horizon = min(set(source["horizons"]) & set(target["horizons"]))
    config = timedrl_config_for(source["n_features"], preset, seed=args.seed)
    options = _training_options(args, alpha=args.alpha, seed=args.seed)
    options.pretrain = PretrainConfig(**_pretrain_overrides(args))
    session = TrainSession(config, options=options)
    result = session.transfer(source["horizons"][horizon],
                              target["horizons"][horizon])
    console_log(f"transfer {args.source} -> {args.target} "
                f"(horizon={horizon}): "
                f"transfer_mse={result.transfer_mse:.4f} "
                f"in_domain_mse={result.in_domain_mse:.4f} "
                f"random_mse={result.random_mse:.4f} "
                f"gap_retained={result.transfer_gap:.3f}")
    return 0


# ----------------------------------------------------------------------
# ``repro serve`` — batch inference from a checkpoint
# ----------------------------------------------------------------------
def _serve_load_input(args, loaded):
    """Resolve the serving workload: an ``.npz``/``.npy`` file, synthetic
    windows, or (default) the dataset recorded in the checkpoint's own
    data spec — the checkpoint → serving handoff."""
    import numpy as np

    if args.input is not None:
        payload = np.load(args.input)
        if isinstance(payload, np.ndarray):
            windows = payload
        else:
            key = next((k for k in ("windows", "x") if k in payload.files),
                       payload.files[0] if payload.files else None)
            if key is None:
                raise ValueError(f"{args.input} contains no arrays")
            windows = payload[key]
    elif args.synthetic:
        rng = np.random.default_rng(args.seed)
        windows = rng.standard_normal(
            (args.synthetic, loaded.config.seq_len,
             loaded.config.input_channels)).astype(np.float32)
    else:
        from .data import materialize_data_spec
        from .data.datasets import ForecastingWindows

        spec = loaded.data_spec
        if not spec:
            raise ValueError(
                "checkpoint carries no data spec; pass --input FILE.npz or "
                "--synthetic N to provide a workload")
        data = materialize_data_spec(spec)
        if isinstance(data, ForecastingWindows):
            count = min(len(data), args.limit or len(data))
            windows, __ = data.batch(np.arange(count))
        else:
            windows = np.asarray(data)
    if args.limit:
        windows = windows[:args.limit]
    if windows.ndim != 3:
        raise ValueError(f"workload must be (N, T, C) windows, got shape "
                         f"{windows.shape}")
    return np.ascontiguousarray(windows, dtype=np.float32)


def _parse_tenants(specs):
    """``name[:weight[:rate[:burst]]]`` strings -> TenantConfig tuple."""
    import math

    from .serve import TenantConfig

    tenants = []
    for spec in specs:
        parts = spec.split(":")
        if not parts[0]:
            raise ValueError(f"tenant spec {spec!r} has an empty name")
        weight = float(parts[1]) if len(parts) > 1 and parts[1] else 1.0
        rate = float(parts[2]) if len(parts) > 2 and parts[2] else math.inf
        burst = float(parts[3]) if len(parts) > 3 and parts[3] else (
            rate if math.isfinite(rate) else math.inf)
        tenants.append(TenantConfig(name=parts[0], weight=weight,
                                    rate=rate, burst=burst))
    return tuple(tenants)


def _run_serve_gateway(args, run) -> int:
    """``repro serve --gateway`` — the workload through the resilient
    multi-tenant front door (admission, deadlines, breaker)."""
    from .serve import (BatchingConfig, DeadlineExceeded, GatewayConfig,
                        ModelRegistry, RegistryError, RetryableError,
                        ServingGateway)

    try:
        registry = ModelRegistry(run=run)
        registry.load(str(args.checkpoint), alias="serving",
                      run_root=str(args.run_root))
        tenants = (_parse_tenants(args.tenant) if args.tenant
                   else _parse_tenants(["default"]))
        gateway = ServingGateway(registry, "serving", GatewayConfig(
            tenants=tenants,
            max_queue_windows=args.queue_windows,
            default_deadline_ms=args.deadline_ms or None,
            stale_ok=args.stale_ok,
            batching=BatchingConfig(max_batch_size=args.batch_size,
                                    max_wait_ms=args.max_wait_ms),
            cache_size=args.cache_size))
        windows = _serve_load_input(args, gateway.loaded)
    except (RegistryError, ValueError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        if run is not None:
            run.finish(status="failed")
        return 1
    names = [tenant.name for tenant in tenants]
    console_log(f"gateway serving {len(windows)} windows x{args.repeats} "
                f"(tenants={','.join(names)}, queue budget "
                f"{args.queue_windows} windows, "
                f"deadline={args.deadline_ms or 'none'}ms, "
                f"stale_ok={args.stale_ok}) "
                f"[{gateway.fingerprint[:12]}]")
    size = max(1, args.request_size)
    served = rejected = 0
    with gateway:
        for _ in range(args.repeats):
            pending = []
            for start in range(0, len(windows), size):
                tenant = names[(start // size) % len(names)]
                x = windows[start:start + size]
                try:
                    pending.append(gateway.submit(x, args.mode,
                                                  tenant=tenant))
                except (RetryableError, DeadlineExceeded):
                    # Behave like a well-mannered client: drain the
                    # admitted backlog, then retry once.
                    gateway.flush()
                    try:
                        pending.append(gateway.submit(x, args.mode,
                                                      tenant=tenant))
                    except (RetryableError, DeadlineExceeded):
                        rejected += 1
            gateway.flush()
            for request in pending:
                try:
                    request.result(0.0)
                    served += 1
                except (RetryableError, DeadlineExceeded):
                    rejected += 1
        report = gateway.report()
    console_log(f"served {served} requests, shed {rejected} "
                f"({report['shed']}) — admitted per tenant "
                f"{report['admission']['admitted']}")
    latency = report["latency"][args.mode]
    if latency["count"]:
        console_log(f"latency per request: p50={latency['p50_ms']:.2f}ms "
                    f"p95={latency['p95_ms']:.2f}ms over "
                    f"{latency['count']} requests")
    if args.report is not None:
        args.report.parent.mkdir(parents=True, exist_ok=True)
        args.report.write_text(json.dumps(report, indent=2, sort_keys=True)
                               + "\n")
        console_log(f"wrote {args.report}")
    if args.obs_export is not None:
        from . import obs

        args.obs_export.parent.mkdir(parents=True, exist_ok=True)
        args.obs_export.write_text(obs.prometheus_text(obs.get_registry()))
        console_log(f"wrote {args.obs_export}")
    if run is not None:
        run.finish(status="completed")
        console_log(f"recorded run {run.run_id} under {args.run_root}")
    return 0


def _run_serve(args) -> int:
    """``repro serve`` — serve embeddings/predictions from a checkpoint."""
    import numpy as np

    from .serve import InferenceService, RegistryError, ServiceConfig

    if args.obs:
        from . import obs
        obs.enable()
    run = None
    if args.telemetry:
        run = Run.create(root=args.run_root, name="serve",
                         tags={"mode": args.mode,
                               "checkpoint": str(args.checkpoint),
                               "gateway": bool(args.gateway)})
    if args.gateway:
        return _run_serve_gateway(args, run)
    config = ServiceConfig(max_batch_size=args.batch_size,
                           max_wait_ms=args.max_wait_ms,
                           cache_size=args.cache_size)
    try:
        service = InferenceService.from_checkpoint(
            str(args.checkpoint), config, run=run, run_root=args.run_root)
        windows = _serve_load_input(args, service.loaded)
        console_log(
            f"serving {len(windows)} windows x{args.repeats} "
            f"(mode={args.mode}, batch={args.batch_size}, "
            f"cache={args.cache_size}) from {service.loaded.source} "
            f"[{service.loaded.fingerprint[:12]}]")
        result = None
        for __ in range(args.repeats):
            result = service.serve_windows(windows, mode=args.mode,
                                           request_size=args.request_size)
    except (RegistryError, ValueError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        if run is not None:
            run.finish(status="failed")
        return 1

    report = service.report()
    throughput = report["throughput"]
    latency = report["latency_ms"][args.mode]
    console_log(f"served {throughput['windows']} windows in "
                f"{throughput['elapsed_s']:.3f}s "
                f"({throughput['windows_per_s']:.0f} windows/s)")
    console_log(f"latency per request: p50={latency['p50_ms']:.2f}ms "
                f"p95={latency['p95_ms']:.2f}ms over {latency['count']} "
                f"requests in {report['engine']['batches_run']} micro-batches")
    if "cache" in report:
        cache = report["cache"]
        console_log(f"cache: {cache['hits']} hits / {cache['misses']} misses "
                    f"(hit rate {cache['hit_rate']:.1%}, "
                    f"{cache['evictions']} evictions)")

    if args.output is not None:
        args.output.parent.mkdir(parents=True, exist_ok=True)
        if args.mode == "encode":
            timestamp, instance = result
            np.savez_compressed(args.output, timestamp=timestamp,
                                instance=instance)
        else:
            np.savez_compressed(args.output, prediction=result)
        console_log(f"wrote {args.output}")
    if args.report is not None:
        args.report.parent.mkdir(parents=True, exist_ok=True)
        args.report.write_text(json.dumps(report, indent=2, sort_keys=True)
                               + "\n")
        console_log(f"wrote {args.report}")
    if args.obs_export is not None:
        from . import obs

        args.obs_export.parent.mkdir(parents=True, exist_ok=True)
        args.obs_export.write_text(obs.prometheus_text(obs.get_registry()))
        console_log(f"wrote {args.obs_export}")
    if run is not None:
        run.finish(status="completed")
        console_log(f"recorded run {run.run_id} under {args.run_root}")
    return 0


# ----------------------------------------------------------------------
# ``repro swap`` — zero-downtime rolling model swap
# ----------------------------------------------------------------------
def _run_swap(args) -> int:
    """Shadow-validate ``--candidate`` on live traffic and flip the alias.

    Exit codes: 0 the candidate was promoted, 4 it was rolled back
    (shadow validation failed), 1 anything else went wrong.
    """
    import numpy as np

    from .serve import (GatewayConfig, ModelRegistry, RegistryError,
                        ServingGateway, SwapConfig, SwapFailed)

    run = None
    if args.telemetry:
        run = Run.create(root=args.run_root, name="swap",
                         tags={"checkpoint": str(args.checkpoint),
                               "candidate": str(args.candidate)})
    try:
        registry = ModelRegistry(run=run)
        registry.load(str(args.checkpoint), alias="serving",
                      run_root=str(args.run_root))
        gateway = ServingGateway(registry, "serving", GatewayConfig(),
                                 run=run)
        config = SwapConfig(shadow_requests=args.shadow_requests,
                            latency_budget_ms=args.latency_budget_ms,
                            max_abs_diff=args.max_abs_diff)
        console_log(f"serving {gateway.fingerprint[:12]} — shadowing "
                    f"candidate {args.candidate} over "
                    f"{config.shadow_requests} mirrored requests "
                    f"(budget {config.latency_budget_ms:.0f}ms, "
                    f"tolerance {config.max_abs_diff})")
        with gateway:
            handle = gateway.begin_swap(str(args.candidate), config,
                                        run_root=str(args.run_root))
            # Drive live traffic so there is something to mirror.  Each
            # request both serves the caller and feeds one shadow verdict.
            loaded = gateway.loaded
            rng = np.random.default_rng(args.seed)
            size = max(1, args.request_size)
            requests = max(args.traffic // size if args.traffic else 0,
                           config.shadow_requests + 2)
            for index in range(requests):
                x = rng.standard_normal(
                    (size, loaded.config.seq_len,
                     loaded.config.input_channels)).astype(np.float32)
                if args.mode == "encode":
                    gateway.encode(x)
                else:
                    gateway.predict(x)
                if handle.done():
                    break
            if not handle.done():
                gateway.abort_swap()
            report = handle.wait(60.0)
    except (RegistryError, SwapFailed, ValueError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        if run is not None:
            run.finish(status="failed")
        return 1
    shadow = report["shadow"]
    console_log(f"shadow verdicts: {shadow['passed']} passed, "
                f"{shadow['failed']} failed of {shadow['mirrored']} "
                f"mirrored (max |diff| {shadow['max_abs_diff']:.3g}, "
                f"max latency {shadow['max_latency_ms']:.2f}ms)")
    console_log(f"{report['outcome']}: serving "
                f"{report['serving_fingerprint'][:12]} "
                f"(was {report['previous_fingerprint'][:12]}, candidate "
                f"{report['candidate_fingerprint'][:12]})")
    if args.report is not None:
        args.report.parent.mkdir(parents=True, exist_ok=True)
        args.report.write_text(json.dumps(report, indent=2, sort_keys=True)
                               + "\n")
        console_log(f"wrote {args.report}")
    if run is not None:
        run.finish(status="completed")
        console_log(f"recorded run {run.run_id} under {args.run_root}")
    return 0 if report["outcome"] == "promoted" else 4


# ----------------------------------------------------------------------
# ``repro obs`` — metrics snapshot / export / live dashboard
# ----------------------------------------------------------------------
def _obs_service(args, run=None):
    """Optionally stand up an InferenceService for a synthetic workload.

    Returns ``(service, windows)`` or ``(None, None)`` when no checkpoint
    was given — the obs commands then report whatever the process has
    already collected (resource gauges at minimum).
    """
    import numpy as np

    from .serve import InferenceService, ServiceConfig

    if args.checkpoint is None:
        return None, None
    service = InferenceService.from_checkpoint(
        str(args.checkpoint), ServiceConfig(), run=run,
        run_root=str(_DEFAULT_RUN_ROOT))
    rng = np.random.default_rng(args.seed)
    count = args.synthetic or 16
    windows = rng.standard_normal(
        (count, service.loaded.config.seq_len,
         service.loaded.config.input_channels)).astype(np.float32)
    return service, windows


def _obs_slo_rules(args):
    from . import obs

    if not args.slo:
        return None
    return obs.SloRules(args.slo)


def _run_obs(args) -> int:
    """``repro obs snapshot|export|watch`` — the observability CLI."""
    import time as _time

    from . import obs
    from .serve import RegistryError

    obs.enable()
    sampler = obs.ResourceSampler(interval=max(args.interval / 2, 0.1))
    try:
        rules = _obs_slo_rules(args)
    except obs.SloParseError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    try:
        service, windows = _obs_service(args)
    except (RegistryError, ValueError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1

    def tick():
        if service is not None:
            service.serve_windows(windows, mode="encode",
                                  request_size=args.request_size)
            if service.cache is not None:
                service.cache.stats()  # refreshes the hit-rate gauge
        sampler.sample_once()

    registry = obs.get_registry()
    if args.obs_command == "export":
        tick()
        if args.format == "prometheus":
            text = obs.prometheus_text(registry)
        else:
            text = json.dumps(obs.json_snapshot(registry), indent=2,
                              sort_keys=True) + "\n"
        if args.output is not None:
            args.output.parent.mkdir(parents=True, exist_ok=True)
            args.output.write_text(text)
            console_log(f"wrote {args.output}")
        else:
            print(text, end="")
        return _obs_verdict(rules, registry)

    if args.obs_command == "snapshot":
        tick()
        if args.output is not None:
            obs.write_json_snapshot(registry, args.output)
            console_log(f"wrote {args.output}")
        dashboard = obs.Dashboard(registry, slo_rules=rules)
        print(dashboard.render())
        return _obs_verdict(rules, registry)

    # watch: live-refreshing terminal dashboard
    dashboard = obs.Dashboard(registry, slo_rules=rules)
    iterations = args.iterations
    rendered = 0
    try:
        while iterations == 0 or rendered < iterations:
            tick()
            frame = dashboard.render()
            if rendered and not args.no_clear:
                # ANSI: home the cursor and clear below, then repaint.
                print("\x1b[H\x1b[J", end="")
            print(frame, flush=True)
            rendered += 1
            if iterations == 0 or rendered < iterations:
                _time.sleep(args.interval)
    except KeyboardInterrupt:
        pass
    return _obs_verdict(rules, registry)


def _obs_verdict(rules, registry) -> int:
    """Exit code 0 unless an SLO rule is violated (unknowns don't fail)."""
    if rules is None:
        return 0
    violations = rules.violations(registry)
    for violation in violations:
        print(f"SLO violated: {violation['rule']} "
              f"(value: {violation['value']})", file=sys.stderr)
    return 2 if violations else 0


# ----------------------------------------------------------------------
# ``repro data`` — build/inspect/verify on-disk window stores
# ----------------------------------------------------------------------
def _data_build(args) -> int:
    """``repro data build`` — materialize ladder tiers (or a custom
    synthetic corpus) as sharded on-disk stores."""
    from .data import (DATA_LADDER, build_ladder_tier, build_store,
                       open_store, synthetic_windows_spec)

    built = []
    if args.windows:
        spec = synthetic_windows_spec(args.windows, seq_len=args.seq_len,
                                      channels=args.channels, seed=args.seed)
        root = pathlib.Path(args.root) / "custom"
        built.append(build_store(spec, root, force=args.force))
    else:
        tiers = args.tier or ["smallest"]
        if tiers == ["all"]:
            tiers = list(DATA_LADDER)
        for tier in tiers:
            built.append(build_ladder_tier(
                args.root, tier, seq_len=args.seq_len, channels=args.channels,
                seed=args.seed, scale=args.scale, force=args.force))
    for root in built:
        with open_store(root) as store:
            console_log(f"{root}: {len(store)} windows "
                        f"{store.window_shape} {store.manifest.dtype}, "
                        f"{len(store.manifest.shards)} shard(s), "
                        f"{store.nbytes / 1e6:.1f} MB")
    return 0


def _data_info(args) -> int:
    """``repro data info`` — print a store's manifest summary."""
    from .data import open_store

    with open_store(args.path) as store:
        manifest = store.manifest
        console_log(f"# Store {store.root}")
        console_log(f"{'windows':>12}: {len(store)}")
        console_log(f"{'window shape':>12}: {manifest.window_shape}")
        console_log(f"{'dtype':>12}: {manifest.dtype}")
        console_log(f"{'bytes':>12}: {store.nbytes}")
        console_log(f"{'tier':>12}: {manifest.tier or '—'}")
        console_log(f"{'spec':>12}: {json.dumps(manifest.spec, sort_keys=True)}")
        console_log(f"{'shards':>12}: {len(manifest.shards)} "
                    f"x {manifest.shard_rows} rows (last may be short)")
        for shard in manifest.shards:
            console_log(f"{'':>14}{shard.file}  rows={shard.rows:<8} "
                        f"sha256={shard.sha256[:12]}")
    return 0


def _data_verify(args) -> int:
    """``repro data verify`` — full checksum pass over every shard."""
    from .data import DataValidationError, verify_store

    try:
        manifest = verify_store(args.path)
    except DataValidationError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    console_log(f"{args.path}: OK — {manifest.total_windows} windows in "
                f"{len(manifest.shards)} shard(s), all checksums match")
    return 0


_DATA_COMMANDS = {"build": _data_build, "info": _data_info,
                  "verify": _data_verify}


# ----------------------------------------------------------------------
# ``repro runs`` — inspect recorded telemetry runs
# ----------------------------------------------------------------------
def _format_value(value) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    if value is None:
        return "—"
    return str(value)


def _runs_list(args) -> int:
    summaries = list_runs(args.root)
    if not summaries:
        console_log(f"no runs under {args.root}")
        return 0
    header = f"{'run_id':<36}  {'status':<10}  {'created':<20}  {'final total':>12}  health"
    console_log(header)
    console_log("-" * len(header))
    for summary in summaries:
        final = summary["summary"].get("final_total")
        issues = len(summary["health"])
        console_log(
            f"{summary['run_id']:<36}  {summary['status']:<10}  "
            f"{(summary['created_at'] or '—'):<20}  "
            f"{_format_value(final):>12}  "
            f"{'ok' if not issues else f'{issues} issue(s)'}")
    return 0


_MANIFEST_SHOW_FIELDS = ("run_id", "name", "status", "created_at", "finished_at",
                         "package_version", "seed", "wall_clock_seconds")
_EPOCH_HIDE_KEYS = ("type", "seq", "time")


def _checkpoint_directories(run_dir) -> list[pathlib.Path]:
    """The run's checkpoint directory plus one level of phase/task
    subdirectories (transfer phases, fine-tuning tasks)."""
    root = pathlib.Path(run_dir) / "checkpoints"
    if not root.is_dir():
        return []
    candidates = [root] + sorted(p for p in root.iterdir() if p.is_dir())
    return [p for p in candidates
            if (p / "index.json").is_file() or any(p.glob("ckpt-*.npz"))]


def _show_checkpoints(run_dir) -> None:
    from .checkpoint import CheckpointManager

    root = pathlib.Path(run_dir) / "checkpoints"
    for directory in _checkpoint_directories(run_dir):
        entries = CheckpointManager(directory).inventory()
        if not entries:
            continue
        label = directory.relative_to(root.parent)
        console_log("")
        console_log(f"checkpoints ({label}):")
        last_step = max(entry.step for entry in entries)
        for entry in entries:
            markers = " ".join(name for name, hit in
                               (("best", entry.is_best),
                                ("last", entry.step == last_step)) if hit)
            console_log(
                f"  {entry.path.name}  step={entry.step:<6} "
                f"epoch={entry.epoch:<4} size={entry.size_bytes / 1024:.1f}KiB  "
                f"sha256={entry.sha256[:12]}  {markers}")


def _runs_show(args) -> int:
    run = find_run(args.run_id, args.root)
    console_log(f"# Run {run.run_id}")
    for field in _MANIFEST_SHOW_FIELDS:
        if run.manifest.get(field) is not None:
            console_log(f"{field:>20}: {_format_value(run.manifest[field])}")
    for section in ("dataset", "model_config", "train_config"):
        payload = run.manifest.get(section)
        if payload:
            body = " ".join(f"{k}={_format_value(v)}"
                            for k, v in sorted(payload.items()))
            console_log(f"{section:>20}: {body}")
    for issue in run.manifest.get("health", []):
        console_log(f"{'health':>20}: {issue}")

    if run.epoch_metrics:
        keys: list[str] = []
        for record in run.epoch_metrics:
            for key in record:
                if key not in keys and key not in _EPOCH_HIDE_KEYS:
                    keys.append(key)
        console_log("")
        console_log("  ".join(f"{key:>12}" for key in keys))
        for record in run.epoch_metrics:
            console_log("  ".join(
                f"{_format_value(record.get(key)):>12}" for key in keys))
    summary = run.manifest.get("summary") or {}
    if summary:
        console_log("")
        console_log("summary: " + " ".join(
            f"{k}={_format_value(v)}" for k, v in sorted(summary.items())))
    _show_checkpoints(run.directory)
    if args.svg is not None:
        loss_curve_svg(run, args.svg)
        console_log(f"wrote {args.svg}")
    return 0


def _runs_diff(args) -> int:
    left = find_run(args.run_a, args.root)
    right = find_run(args.run_b, args.root)
    delta = diff_runs(left, right)
    console_log(f"# {left.run_id} vs {right.run_id}")
    if delta["config"]:
        console_log("config differences:")
        for key, (a_value, b_value) in sorted(delta["config"].items()):
            console_log(f"  {key}: {_format_value(a_value)} -> "
                        f"{_format_value(b_value)}")
    else:
        console_log("config differences: none")
    if delta["metrics"]:
        console_log("final metrics:")
        for key, entry in delta["metrics"].items():
            line = (f"  {key}: a={_format_value(entry['a'])} "
                    f"b={_format_value(entry['b'])}")
            if "delta" in entry:
                line += f" delta={_format_value(entry['delta'])}"
            console_log(line)
    return 0


def _runs_tail(args) -> int:
    run = find_run(args.run_id, args.root)
    types = tuple(args.type) if args.type else None
    for event in tail_events(run, args.count, types=types):
        console_log(json.dumps(event, sort_keys=True))
    return 0


def _runs_resume(args) -> int:
    """``repro runs resume`` — restart pre-training from a run's newest
    valid checkpoint (corrupt ones are skipped with a warning).

    The session is rebuilt through :class:`repro.train.TrainSession`; the
    checkpoint's own metadata decides distributed topology and prefetch
    (``--workers`` overrides the recorded world size)."""
    from .checkpoint import CheckpointManager
    from .core.config import PretrainConfig, TimeDRLConfig
    from .train import TrainOptions, TrainSession

    as_path = pathlib.Path(args.run_id)
    if as_path.is_dir() and any(as_path.glob("ckpt-*.npz")):
        # A checkpoint directory given directly (e.g. from an experiment's
        # --checkpoint DIR) works too.
        ckpt_dir, label = as_path, str(as_path)
    else:
        run = find_run(args.run_id, args.root)
        ckpt_dir, label = pathlib.Path(run.directory) / "checkpoints", run.run_id
        if not ckpt_dir.is_dir():
            raise ValueError(f"run {run.run_id} has no checkpoints directory "
                             f"(was it trained with PretrainConfig(checkpoint=...)?)")
    loaded = CheckpointManager(ckpt_dir).load_latest()
    if loaded is None:
        raise ValueError(f"no valid checkpoint under {ckpt_dir}")
    state, meta = loaded
    model_cfg = meta.get("model_config")
    train_cfg = meta.get("train_config")
    data_spec = meta.get("data_spec")
    if not (model_cfg and train_cfg and data_spec):
        raise ValueError(
            "checkpoint lacks self-describing metadata (model_config/"
            "train_config/data_spec); resume from the original script with "
            "CheckpointConfig(resume=True) instead")
    console_log(f"resuming {label} from step {state.global_step} "
                f"(epoch {state.epoch}, batch {state.batch_in_epoch})")
    train_dict = dict(train_cfg)
    ckpt_dict = dict(train_dict.get("checkpoint") or {})
    ckpt_dict["directory"] = str(ckpt_dir)
    ckpt_dict["resume"] = True
    train_dict["checkpoint"] = ckpt_dict
    if getattr(args, "prefetch", False):
        train_dict["prefetch"] = True
    distributed = meta.get("distributed")
    if getattr(args, "workers", None) is not None:
        distributed = args.workers if args.workers > 1 else None
    session = TrainSession(TimeDRLConfig(**model_cfg))
    result = session.pretrain(
        data_spec,  # spec dict: workers materialize only their shard
        options=TrainOptions(pretrain=PretrainConfig(**train_dict),
                             distributed=distributed))
    console_log(f"resume complete: epochs={len(result.history)} "
                f"world_size={result.world_size} "
                f"final_total={result.final_loss:.4f}")
    if result.run_id is not None:
        console_log(f"recorded as run {result.run_id}")
    return 0


_RUNS_COMMANDS = {"list": _runs_list, "show": _runs_show,
                  "diff": _runs_diff, "tail": _runs_tail,
                  "resume": _runs_resume}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate tables/figures of the TimeDRL paper (ICDE 2024).")
    sub = parser.add_subparsers(dest="experiment", required=True)
    list_parser = sub.add_parser("list", help="list available experiments")
    list_parser.set_defaults(experiment="list")
    prof = sub.add_parser(
        "profile", help="op-level profile of a short synthetic pre-training run")
    prof.set_defaults(experiment="profile")
    prof.add_argument("--steps", type=int, default=10, help="training steps to profile")
    prof.add_argument("--batch-size", type=int, default=8)
    prof.add_argument("--seq-len", type=int, default=128)
    prof.add_argument("--channels", type=int, default=7)
    prof.add_argument("--sort-by", choices=("count", "total_s", "self_s", "bytes"),
                      default="total_s")
    prof.add_argument("--limit", type=int, default=25, help="max rows to print")
    prof.add_argument("--unfused", action="store_true",
                      help="profile the reference (unfused) kernels instead")
    prof.add_argument("--no-grad", action="store_true",
                      help="profile the inference (encode) forward instead "
                           "of full training steps")
    prof.add_argument("--compiled", nargs="?", const="fp32",
                      choices=("fp32", "int8"), default=None,
                      help="profile a compiled packed model instead of the "
                           "autograd forward (implies --no-grad; default "
                           "precision fp32)")
    prof.add_argument("--seed", type=int, default=0)
    prof.add_argument("--output", type=pathlib.Path, default=None,
                      help="write the raw op stats as JSON to this file")

    comp = sub.add_parser(
        "compile", help="compile a checkpoint into a packed (optionally "
                        "int8-quantized / distilled) inference artifact "
                        "servable via `repro serve` / `repro swap`")
    comp.set_defaults(experiment="compile")
    comp.add_argument("source",
                      help="checkpoint file, checkpoint directory, or run id")
    precision = comp.add_mutually_exclusive_group()
    precision.add_argument("--int8", action="store_true", default=True,
                           help="per-channel symmetric int8 weights "
                                "(default)")
    precision.add_argument("--fp32", action="store_true",
                           help="packed fp32 (bit-identical exact mode)")
    comp.add_argument("--distill", action="store_true",
                      help="first distill into a narrower/shallower student "
                           "on the calibration windows, then compile it")
    comp.add_argument("--calibrate", default=None, metavar="SPEC",
                      help="calibration data: 'synthetic[:N[:seed]]' or a "
                           "window-store directory (default: synthetic "
                           "windows matching the model geometry)")
    comp.add_argument("--windows", type=int, default=64,
                      help="calibration windows to materialize")
    comp.add_argument("--exact-gelu", action="store_true",
                      help="keep the exact erf GELU (and separate q/k/v "
                           "GEMMs) even for int8 — slower, less drift")
    comp.add_argument("--layer-error-budget", type=float, default=1.0,
                      help="per-layer predicted output error above which a "
                           "layer stays fp32")
    comp.add_argument("--student-d-model", type=int, default=32)
    comp.add_argument("--student-layers", type=int, default=1)
    comp.add_argument("--student-heads", type=int, default=2)
    comp.add_argument("--distill-epochs", type=int, default=3)
    comp.add_argument("--distill-batch-size", type=int, default=32)
    comp.add_argument("--distill-lr", type=float, default=1e-3)
    comp.add_argument("--max-abs-diff", type=float, default=0.0,
                      help="fail (exit 4) if the embedding drift vs the fp "
                           "reference exceeds this (0 = report only)")
    comp.add_argument("--seed", type=int, default=0)
    comp.add_argument("--output", type=pathlib.Path, default=None,
                      help="artifact path (default ./compiled-<kind>.npz)")
    comp.add_argument("--report", type=pathlib.Path, default=None,
                      help="write the JSON compile report here")
    comp.add_argument("--run-root", type=pathlib.Path,
                      default=_DEFAULT_RUN_ROOT,
                      help="run directory root for run-id sources")

    pre = sub.add_parser(
        "pretrain", help="self-supervised pre-training through the "
                         "repro.train driver (data-parallel with --workers)")
    pre.set_defaults(experiment="pretrain")
    pre.add_argument("--data", type=pathlib.Path, default=None,
                     help="window store directory (repro data build) or "
                          ".npz/.npy of raw windows (N, T, C)")
    pre.add_argument("--synthetic", type=int, default=0, metavar="N",
                     help="pre-train on N synthetic windows instead of "
                          "--data (each worker generates only its shard)")
    pre.add_argument("--seq-len", type=int, default=64,
                     help="synthetic window length (ignored with --data)")
    pre.add_argument("--channels", type=int, default=7,
                     help="synthetic channel count (ignored with --data)")
    pre.add_argument("--patch-len", type=int, default=8)
    pre.add_argument("--d-model", type=int, default=64)
    pre.add_argument("--num-layers", type=int, default=2)
    pre.add_argument("--num-heads", type=int, default=4)
    pre.add_argument("--dropout", type=float, default=0.1)
    pre.add_argument("--channel-independence", action="store_true",
                     help="encode each channel independently (required to "
                          "later fine-tune the checkpoint on multivariate "
                          "forecasting)")
    pre.add_argument("--no-contrastive", action="store_true",
                     help="disable the contrastive task; its BatchNorm "
                          "predictor gives data-parallel replicas per-shard "
                          "batch statistics (see docs/training.md)")
    pre.add_argument("--epochs", type=int, default=None,
                     help="training epochs (default: the driver default)")
    pre.add_argument("--batch-size", type=int, default=None)
    pre.add_argument("--lr", type=float, default=None)
    pre.add_argument("--max-batches", type=int, default=None,
                     help="cap batches per epoch (CI/smoke runs)")
    pre.add_argument("--seed", type=int, default=0)
    pre.add_argument("--history-json", type=pathlib.Path, default=None,
                     metavar="FILE",
                     help="write the per-epoch loss history and worker "
                          "stats as JSON")
    _add_training_flags(pre)

    fine = sub.add_parser(
        "finetune", help="fine-tune a pre-trained (or fresh) model on a "
                         "named dataset through the repro.train driver")
    fine.set_defaults(experiment="finetune")
    fine.add_argument("--from", dest="source_checkpoint", default=None,
                      metavar="CKPT",
                      help="pre-trained checkpoint to start from (file, "
                           "directory, or run id); omitted = random "
                           "initialisation (supervised baseline)")
    fine.add_argument("--dataset", required=True,
                      help="forecasting or classification dataset name")
    fine.add_argument("--scale", choices=("smoke", "default", "full"),
                      default=None,
                      help="scale preset (default: env or 'default')")
    fine.add_argument("--label-fraction", type=float, default=1.0)
    fine.add_argument("--epochs", type=int, default=None,
                      help="training epochs (default: the task default)")
    fine.add_argument("--batch-size", type=int, default=None)
    fine.add_argument("--lr", type=float, default=None)
    fine.add_argument("--seed", type=int, default=0)
    _add_training_flags(fine, workers_help="accepted for flag parity; "
                                           "fine-tuning runs single-process "
                                           "(workers apply to pre-training)")

    trans = sub.add_parser(
        "transfer", help="pre-train on one forecasting dataset, probe the "
                         "frozen encoder on another")
    trans.set_defaults(experiment="transfer")
    trans.add_argument("--source", required=True,
                       help="forecasting dataset to pre-train on")
    trans.add_argument("--target", required=True,
                       help="forecasting dataset to probe on")
    trans.add_argument("--scale", choices=("smoke", "default", "full"),
                       default=None,
                       help="scale preset (default: env or 'default')")
    trans.add_argument("--epochs", type=int, default=None,
                       help="pre-training epochs (default: the driver "
                            "default)")
    trans.add_argument("--batch-size", type=int, default=None)
    trans.add_argument("--lr", type=float, default=None)
    trans.add_argument("--alpha", type=float, default=1.0,
                       help="ridge strength of the frozen linear probe")
    trans.add_argument("--seed", type=int, default=0)
    _add_training_flags(trans)

    serve = sub.add_parser(
        "serve", help="serve embeddings/predictions from a checkpoint "
                      "(micro-batched, cached, with a latency report)")
    serve.set_defaults(experiment="serve")
    serve.add_argument("--checkpoint", required=True,
                       help="checkpoint file, checkpoint directory, or run id")
    serve.add_argument("--mode", choices=("encode", "predict"),
                       default="encode",
                       help="encode: dual-level embeddings; predict: "
                            "per-patch reconstruction-error scores")
    serve.add_argument("--input", type=pathlib.Path, default=None,
                       help=".npz/.npy of raw windows (N, T, C); default: "
                            "rebuild the checkpoint's own data spec")
    serve.add_argument("--synthetic", type=int, default=0, metavar="N",
                       help="serve N synthetic windows matching the model's "
                            "geometry instead of real data")
    serve.add_argument("--limit", type=int, default=0,
                       help="cap the number of windows served (0 = all)")
    serve.add_argument("--repeats", type=int, default=1,
                       help="serve the workload this many times (cache "
                            "hit-rate demonstration)")
    serve.add_argument("--batch-size", type=int, default=64,
                       help="micro-batch size (max windows per forward pass)")
    serve.add_argument("--max-wait-ms", type=float, default=2.0,
                       help="micro-batch deadline for the threaded engine")
    serve.add_argument("--request-size", type=int, default=1,
                       help="windows per request (cache granularity)")
    serve.add_argument("--cache-size", type=int, default=1024,
                       help="embedding-cache capacity in requests (0 = off)")
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument("--output", type=pathlib.Path, default=None,
                       help="write embeddings/predictions to this .npz")
    serve.add_argument("--report", type=pathlib.Path, default=None,
                       help="write the JSON latency report here")
    serve.add_argument("--telemetry", action="store_true",
                       help="record the serving session as a telemetry run")
    serve.add_argument("--run-root", type=pathlib.Path,
                       default=_DEFAULT_RUN_ROOT)
    serve.add_argument("--obs", action="store_true",
                       help="collect metrics/traces into the process "
                            "observability registry while serving")
    serve.add_argument("--obs-export", type=pathlib.Path, default=None,
                       metavar="FILE",
                       help="after serving, write the Prometheus text "
                            "exposition here (implies --obs)")
    serve.add_argument("--gateway", action="store_true",
                       help="serve through the resilient multi-tenant "
                            "gateway (admission control, deadlines, "
                            "circuit breaker) instead of the bare service")
    serve.add_argument("--tenant", action="append", default=None,
                       metavar="NAME[:WEIGHT[:RATE[:BURST]]]",
                       help="gateway tenant spec (repeatable); WEIGHT is "
                            "the fair-share weight, RATE/BURST the "
                            "token-bucket quota in windows/s")
    serve.add_argument("--deadline-ms", type=float, default=0.0,
                       help="gateway per-request deadline (0 = none)")
    serve.add_argument("--queue-windows", type=int, default=1024,
                       help="gateway in-flight window budget before "
                            "overload shedding")
    serve.add_argument("--stale-ok", action="store_true",
                       help="while the breaker is open, allow cache "
                            "answers computed by previous model weights")

    swap = sub.add_parser(
        "swap", help="zero-downtime rolling model swap: shadow-validate a "
                     "candidate checkpoint on live traffic, then flip "
                     "(exit 0 promoted, 4 rolled back)")
    swap.set_defaults(experiment="swap")
    swap.add_argument("--checkpoint", required=True,
                      help="currently-serving checkpoint (file, directory, "
                           "or run id)")
    swap.add_argument("--candidate", required=True,
                      help="candidate checkpoint to shadow-validate")
    swap.add_argument("--shadow-requests", type=int, default=8,
                      help="mirrored live requests the candidate must pass")
    swap.add_argument("--latency-budget-ms", type=float, default=250.0,
                      help="max per-mirror candidate latency")
    swap.add_argument("--max-abs-diff", type=float, default=0.0,
                      help="output tolerance vs live (0 = bit-compare)")
    swap.add_argument("--traffic", type=int, default=0, metavar="N",
                      help="drive N synthetic live windows through the "
                           "gateway during shadowing (default: just enough "
                           "to score the shadow requests)")
    swap.add_argument("--request-size", type=int, default=2,
                      help="windows per live request")
    swap.add_argument("--mode", choices=("encode", "predict"),
                      default="encode")
    swap.add_argument("--seed", type=int, default=0)
    swap.add_argument("--report", type=pathlib.Path, default=None,
                      help="write the JSON swap report here")
    swap.add_argument("--telemetry", action="store_true",
                      help="record the swap as a telemetry run "
                           "(swap/swap_shadow events)")
    swap.add_argument("--run-root", type=pathlib.Path,
                      default=_DEFAULT_RUN_ROOT)

    obs_parser = sub.add_parser(
        "obs", help="observability: metrics snapshot, Prometheus/JSON "
                    "export, live terminal dashboard")
    obs_parser.set_defaults(experiment="obs")
    obs_sub = obs_parser.add_subparsers(dest="obs_command", required=True)
    obs_snapshot = obs_sub.add_parser(
        "snapshot", help="render the dashboard once (and optionally write "
                         "a JSON snapshot)")
    obs_export = obs_sub.add_parser(
        "export", help="emit the metric registry as Prometheus text "
                       "exposition or a JSON snapshot")
    obs_export.add_argument("--format", choices=("prometheus", "json"),
                            default="prometheus")
    obs_watch = obs_sub.add_parser(
        "watch", help="live-refreshing terminal dashboard")
    obs_watch.add_argument("--interval", type=float, default=1.0,
                           help="seconds between refreshes (default 1.0)")
    obs_watch.add_argument("--iterations", type=int, default=0,
                           help="stop after N refreshes (0 = until Ctrl-C)")
    obs_watch.add_argument("--no-clear", action="store_true",
                           help="append frames instead of repainting "
                                "(log-friendly)")
    for obs_cmd in (obs_snapshot, obs_export, obs_watch):
        obs_cmd.add_argument("--checkpoint", default=None,
                             help="serve a synthetic workload from this "
                                  "checkpoint each tick so the serve metrics "
                                  "are live")
        obs_cmd.add_argument("--synthetic", type=int, default=0, metavar="N",
                             help="synthetic windows per tick (default 16)")
        obs_cmd.add_argument("--request-size", type=int, default=1)
        obs_cmd.add_argument("--slo", action="append", default=None,
                             metavar="RULE",
                             help="SLO predicate such as "
                                  "'serve_request_ms_p95 < 10' (repeatable; "
                                  "violations exit 2)")
        obs_cmd.add_argument("--seed", type=int, default=0)
        obs_cmd.add_argument("--output", type=pathlib.Path, default=None,
                             help="write the export/snapshot to this file")
        if obs_cmd is not obs_watch:
            obs_cmd.set_defaults(interval=1.0, iterations=1, no_clear=True)

    data = sub.add_parser(
        "data", help="build/inspect/verify on-disk window stores "
                     "(the out-of-core corpus ladder)")
    data.set_defaults(experiment="data")
    data_sub = data.add_subparsers(dest="data_command", required=True)
    data_build = data_sub.add_parser(
        "build", help="materialize ladder tiers as sharded stores")
    data_build.add_argument("--root", type=pathlib.Path,
                            default=pathlib.Path("results/data"),
                            help="store root (one subdirectory per tier)")
    data_build.add_argument("--tier", action="append", default=None,
                            choices=("smallest", "small", "mid", "large", "all"),
                            help="ladder tier to build (repeatable; "
                                 "default smallest; 'all' builds every tier)")
    data_build.add_argument("--windows", type=int, default=0,
                            help="build a custom corpus of N windows "
                                 "instead of a ladder tier")
    data_build.add_argument("--scale", type=float, default=1.0,
                            help="shrink tier window counts (CI/smoke builds)")
    data_build.add_argument("--seq-len", type=int, default=64)
    data_build.add_argument("--channels", type=int, default=7)
    data_build.add_argument("--seed", type=int, default=0)
    data_build.add_argument("--force", action="store_true",
                            help="rebuild even if a conflicting store exists")
    data_info = data_sub.add_parser(
        "info", help="print a store's manifest summary")
    data_info.add_argument("path", type=pathlib.Path, help="store directory")
    data_verify = data_sub.add_parser(
        "verify", help="re-hash every shard against the manifest checksums")
    data_verify.add_argument("path", type=pathlib.Path, help="store directory")

    runs = sub.add_parser("runs", help="inspect recorded training runs")
    runs.set_defaults(experiment="runs")
    runs_sub = runs.add_subparsers(dest="runs_command", required=True)
    runs_list = runs_sub.add_parser("list", help="list runs under the run root")
    runs_show = runs_sub.add_parser(
        "show", help="manifest + per-epoch metrics of one run")
    runs_show.add_argument("run_id", help="run id, unique prefix, or directory")
    runs_show.add_argument("--svg", type=pathlib.Path, default=None,
                           help="also export the loss curves as SVG here")
    runs_diff = runs_sub.add_parser(
        "diff", help="compare two runs' configs and final metrics")
    runs_diff.add_argument("run_a")
    runs_diff.add_argument("run_b")
    runs_tail = runs_sub.add_parser("tail", help="print a run's last events")
    runs_tail.add_argument("run_id")
    runs_tail.add_argument("-n", "--count", type=int, default=20)
    runs_tail.add_argument("--type", action="append", default=None,
                           metavar="TYPE",
                           help="only events of this type (repeatable; e.g. "
                                "--type swap --type swap_shadow)")
    runs_resume = runs_sub.add_parser(
        "resume", help="restart pre-training from a run's newest valid "
                       "checkpoint (or from a checkpoint directory)")
    runs_resume.add_argument("run_id", help="run id, unique prefix, run "
                                            "directory, or checkpoint directory")
    runs_resume.add_argument("--workers", type=int, default=None,
                             help="override the recorded data-parallel "
                                  "world size (default: honor the "
                                  "checkpoint's own metadata)")
    runs_resume.add_argument("--prefetch", action="store_true",
                             help="force prefetch on for the resumed "
                                  "session (default: honor the checkpoint)")
    for runs_cmd in (runs_list, runs_show, runs_diff, runs_tail, runs_resume):
        runs_cmd.add_argument("--root", type=pathlib.Path,
                              default=_DEFAULT_RUN_ROOT,
                              help="run directory root (default results/runs)")

    for name, (__, description) in EXPERIMENTS.items():
        exp = sub.add_parser(name, help=description)
        exp.add_argument("--scale", choices=("smoke", "default", "full"),
                         default=None, help="scale preset (default: env or 'default')")
        exp.add_argument("--datasets", nargs="*", default=None,
                         help="override the experiment's dataset list")
        exp.add_argument("--seed", type=int, default=0)
        exp.add_argument("--output", type=pathlib.Path, default=None,
                         help="directory to write markdown tables into")
        exp.add_argument("--telemetry", action="store_true",
                         help="record the experiment as a run under "
                              "results/runs (manifest + events + metrics)")
        exp.add_argument("--run-root", type=pathlib.Path,
                         default=_DEFAULT_RUN_ROOT,
                         help="where --telemetry writes the run directory")
        if name in ("table3", "table4", "table5"):
            exp.add_argument("--checkpoint", type=pathlib.Path, default=None,
                             metavar="DIR",
                             help="checkpoint TimeDRL pre-training under DIR "
                                  "(one subdirectory per dataset)")
            exp.add_argument("--resume", action="store_true",
                             help="resume TimeDRL pre-training from the "
                                  "newest valid checkpoint under the "
                                  "--checkpoint directory")
    return parser


def _emit(result, name: str, output: pathlib.Path | None) -> None:
    tables = result if isinstance(result, dict) else {"": result}
    for key, table in tables.items():
        table.print()
        if output is not None:
            output.mkdir(parents=True, exist_ok=True)
            suffix = f"_{key.lower()}" if key else ""
            path = output / f"{name}{suffix}.md"
            path.write_text(table.to_markdown() + "\n")
            console_log(f"wrote {path}")


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.experiment == "list":
        for name, (__, description) in EXPERIMENTS.items():
            console_log(f"{name:8} {description}")
        return 0
    if args.experiment == "profile":
        return _run_profile(args)
    if args.experiment == "compile":
        return _run_compile(args)
    if args.experiment == "pretrain":
        return _run_pretrain_cmd(args)
    if args.experiment == "finetune":
        return _run_finetune_cmd(args)
    if args.experiment == "transfer":
        return _run_transfer_cmd(args)
    if args.experiment == "serve":
        if args.obs_export is not None:
            args.obs = True
        return _run_serve(args)
    if args.experiment == "swap":
        return _run_swap(args)
    if args.experiment == "obs":
        return _run_obs(args)
    if args.experiment == "data":
        from .data import DataValidationError

        try:
            return _DATA_COMMANDS[args.data_command](args)
        except (DataValidationError, FileNotFoundError, ValueError) as error:
            print(f"error: {error}", file=sys.stderr)
            return 1
    if args.experiment == "runs":
        try:
            return _RUNS_COMMANDS[args.runs_command](args)
        except (FileNotFoundError, ValueError) as error:
            print(f"error: {error}", file=sys.stderr)
            return 1
    runner, __ = EXPERIMENTS[args.experiment]
    preset = get_scale(args.scale)
    console_log(f"running {args.experiment} at scale {preset.name!r}")
    if args.telemetry:
        run = Run.create(root=args.run_root, name=args.experiment,
                         seed=args.seed, tags={"experiment": args.experiment,
                                               "scale": preset.name})
        with run:
            result = runner(args, preset, run)
        console_log(f"recorded run {run.run_id} under {args.run_root}")
    else:
        result = runner(args, preset)
    _emit(result, args.experiment, args.output)
    return 0


if __name__ == "__main__":
    sys.exit(main())
