"""Dependency-free SVG chart rendering.

The paper presents Figs. 4–6 as charts; this module turns the benchmark
harness's :class:`~repro.experiments.tables.ResultTable` data into real
figures without any plotting dependency (no matplotlib in this
environment).  Output is plain SVG 1.1, viewable in any browser.
"""

from __future__ import annotations

import math
import pathlib

__all__ = ["line_chart", "bar_chart"]

_WIDTH, _HEIGHT = 640, 400
_MARGIN = {"left": 70, "right": 20, "top": 40, "bottom": 60}
_PALETTE = ["#1f77b4", "#d62728", "#2ca02c", "#ff7f0e", "#9467bd", "#8c564b",
            "#e377c2", "#7f7f7f"]


def _escape(text: str) -> str:
    return (str(text).replace("&", "&amp;").replace("<", "&lt;")
            .replace(">", "&gt;").replace('"', "&quot;"))


def _nice_ticks(low: float, high: float, count: int = 5) -> list[float]:
    """Round tick positions covering [low, high]."""
    if math.isclose(low, high):
        return [low]
    span = high - low
    step = 10 ** math.floor(math.log10(span / max(count - 1, 1)))
    for multiplier in (1, 2, 5, 10):
        if span / (step * multiplier) <= count:
            step *= multiplier
            break
    start = math.floor(low / step) * step
    ticks = []
    tick = start
    while tick <= high + step * 0.5:
        if tick >= low - step * 0.5:
            ticks.append(round(tick, 10))
        tick += step
    return ticks or [low, high]


class _Canvas:
    """Accumulates SVG elements with a shared data-to-pixel transform."""

    def __init__(self, title: str, x_low: float, x_high: float,
                 y_low: float, y_high: float, x_label: str, y_label: str):
        self.parts: list[str] = []
        self.x_low, self.x_high = x_low, x_high
        self.y_low, self.y_high = y_low, y_high
        self._plot_width = _WIDTH - _MARGIN["left"] - _MARGIN["right"]
        self._plot_height = _HEIGHT - _MARGIN["top"] - _MARGIN["bottom"]
        self._frame(title, x_label, y_label)

    def x_pixel(self, x: float) -> float:
        span = self.x_high - self.x_low or 1.0
        return _MARGIN["left"] + (x - self.x_low) / span * self._plot_width

    def y_pixel(self, y: float) -> float:
        span = self.y_high - self.y_low or 1.0
        return _MARGIN["top"] + (1 - (y - self.y_low) / span) * self._plot_height

    def _frame(self, title: str, x_label: str, y_label: str) -> None:
        self.parts.append(
            f'<rect x="{_MARGIN["left"]}" y="{_MARGIN["top"]}" '
            f'width="{self._plot_width}" height="{self._plot_height}" '
            f'fill="none" stroke="#333"/>')
        self.parts.append(
            f'<text x="{_WIDTH / 2}" y="24" text-anchor="middle" '
            f'font-size="16" font-family="sans-serif">{_escape(title)}</text>')
        self.parts.append(
            f'<text x="{_WIDTH / 2}" y="{_HEIGHT - 12}" text-anchor="middle" '
            f'font-size="12" font-family="sans-serif">{_escape(x_label)}</text>')
        self.parts.append(
            f'<text x="16" y="{_HEIGHT / 2}" text-anchor="middle" font-size="12" '
            f'font-family="sans-serif" transform="rotate(-90 16 {_HEIGHT / 2})">'
            f'{_escape(y_label)}</text>')
        for tick in _nice_ticks(self.y_low, self.y_high):
            y = self.y_pixel(tick)
            self.parts.append(
                f'<line x1="{_MARGIN["left"] - 4}" y1="{y:.1f}" '
                f'x2="{_MARGIN["left"]}" y2="{y:.1f}" stroke="#333"/>')
            self.parts.append(
                f'<text x="{_MARGIN["left"] - 8}" y="{y + 4:.1f}" '
                f'text-anchor="end" font-size="10" font-family="sans-serif">'
                f'{tick:g}</text>')

    def legend(self, names: list[str]) -> None:
        for index, name in enumerate(names):
            color = _PALETTE[index % len(_PALETTE)]
            y = _MARGIN["top"] + 14 + 16 * index
            x = _WIDTH - _MARGIN["right"] - 150
            self.parts.append(
                f'<rect x="{x}" y="{y - 9}" width="10" height="10" fill="{color}"/>')
            self.parts.append(
                f'<text x="{x + 16}" y="{y}" font-size="11" '
                f'font-family="sans-serif">{_escape(name)}</text>')

    def render(self) -> str:
        body = "\n".join(self.parts)
        return (f'<svg xmlns="http://www.w3.org/2000/svg" width="{_WIDTH}" '
                f'height="{_HEIGHT}" viewBox="0 0 {_WIDTH} {_HEIGHT}">\n'
                f'{body}\n</svg>\n')


def line_chart(series: dict[str, list[tuple[float, float]]], path,
               title: str = "", x_label: str = "", y_label: str = "",
               log_y: bool = False) -> str:
    """Write a multi-series line chart; returns the SVG text.

    ``series`` maps a legend name to ``[(x, y), ...]`` points.
    """
    if not series or not any(series.values()):
        raise ValueError("need at least one non-empty series")
    points = [(x, math.log10(y) if log_y else y)
              for pts in series.values() for x, y in pts]
    xs, ys = zip(*points)
    canvas = _Canvas(title, min(xs), max(xs), min(ys), max(ys),
                     x_label, (f"log10 {y_label}" if log_y else y_label))
    for index, (name, pts) in enumerate(series.items()):
        color = _PALETTE[index % len(_PALETTE)]
        coords = " ".join(
            f"{canvas.x_pixel(x):.1f},{canvas.y_pixel(math.log10(y) if log_y else y):.1f}"
            for x, y in pts)
        canvas.parts.append(
            f'<polyline points="{coords}" fill="none" stroke="{color}" '
            f'stroke-width="2"/>')
        for x, y in pts:
            canvas.parts.append(
                f'<circle cx="{canvas.x_pixel(x):.1f}" '
                f'cy="{canvas.y_pixel(math.log10(y) if log_y else y):.1f}" '
                f'r="3" fill="{color}"/>')
    canvas.legend(list(series))
    text = canvas.render()
    pathlib.Path(path).write_text(text)
    return text


def bar_chart(values: dict[str, float], path, title: str = "",
              y_label: str = "") -> str:
    """Write a labelled bar chart; returns the SVG text."""
    if not values:
        raise ValueError("need at least one bar")
    y_high = max(max(values.values()), 0.0)
    y_low = min(min(values.values()), 0.0)
    canvas = _Canvas(title, 0, len(values), y_low, y_high or 1.0, "", y_label)
    plot_width = _WIDTH - _MARGIN["left"] - _MARGIN["right"]
    bar_width = plot_width / len(values) * 0.6
    for index, (name, value) in enumerate(values.items()):
        color = _PALETTE[index % len(_PALETTE)]
        x_center = canvas.x_pixel(index + 0.5)
        y_top = canvas.y_pixel(max(value, 0.0))
        y_zero = canvas.y_pixel(max(y_low, 0.0) if y_low > 0 else 0.0)
        height = abs(y_zero - y_top) or 1.0
        canvas.parts.append(
            f'<rect x="{x_center - bar_width / 2:.1f}" y="{min(y_top, y_zero):.1f}" '
            f'width="{bar_width:.1f}" height="{height:.1f}" fill="{color}"/>')
        canvas.parts.append(
            f'<text x="{x_center:.1f}" y="{_HEIGHT - _MARGIN["bottom"] + 16}" '
            f'text-anchor="middle" font-size="10" font-family="sans-serif">'
            f'{_escape(name)}</text>')
    text = canvas.render()
    pathlib.Path(path).write_text(text)
    return text
