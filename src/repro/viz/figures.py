"""Render the paper's chart-style results (Figs. 4–6) as SVG figures.

Each renderer takes the :class:`~repro.experiments.tables.ResultTable`
produced by the corresponding experiment driver and writes a figure that
mirrors the paper's presentation:

* Fig. 4 — grouped training-time bars per method;
* Fig. 5 — metric-vs-label-fraction curves, supervised vs TimeDRL (FT);
* Fig. 6 — metric-vs-λ curves (log-spaced sweep).
"""

from __future__ import annotations

from ..experiments.tables import ResultTable
from .svg import bar_chart, line_chart

__all__ = ["render_fig4", "render_fig5", "render_fig6"]


def render_fig4(table: ResultTable, path, dataset: str | None = None) -> str:
    """Fig. 4: pre-training wall-clock bars for one dataset column."""
    column = dataset or table.columns[0]
    values = {row: table.get(row, column) for row in table.rows}
    return bar_chart(values, path,
                     title=f"Pre-training time on {column} (s)",
                     y_label="seconds")


def _fraction_from_row(row: str) -> float:
    """Parse 'Dataset @ 50%' rows into 0.5."""
    label = row.split("@")[-1].strip().rstrip("%")
    return float(label) / 100.0


def render_fig5(table: ResultTable, path, dataset: str | None = None,
                y_label: str = "metric") -> str:
    """Fig. 5: supervised vs TimeDRL(FT) across label fractions.

    ``dataset`` filters rows of a multi-dataset table (rows look like
    ``"ETTh1 @ 10%"``); defaults to the first dataset present.
    """
    names = sorted({row.split("@")[0].strip() for row in table.rows})
    chosen = dataset or names[0]
    rows = [row for row in table.rows if row.split("@")[0].strip() == chosen]
    if not rows:
        raise KeyError(f"no rows for dataset {chosen!r}")
    series = {
        column: sorted((_fraction_from_row(row), table.get(row, column))
                       for row in rows)
        for column in table.columns
    }
    return line_chart(series, path,
                      title=f"Semi-supervised learning on {chosen}",
                      x_label="label fraction", y_label=y_label)


def render_fig6(table: ResultTable, path, column: str | None = None) -> str:
    """Fig. 6: λ sensitivity curve for one metric column (λ on log10 x)."""
    import math

    chosen = column or table.columns[0]
    points = []
    for row in table.rows:  # rows look like "lambda=0.001"
        lam = float(row.split("=")[-1])
        points.append((math.log10(lam), table.get(row, chosen)))
    series = {chosen: sorted(points)}
    return line_chart(series, path,
                      title=f"Sensitivity to lambda — {chosen}",
                      x_label="log10 lambda", y_label=chosen)
