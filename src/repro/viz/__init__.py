"""``repro.viz`` — dependency-free SVG figure rendering for the paper's
chart-style results (Figs. 4–6)."""

from .figures import render_fig4, render_fig5, render_fig6
from .svg import bar_chart, line_chart

__all__ = ["line_chart", "bar_chart", "render_fig4", "render_fig5", "render_fig6"]
