"""Data-parallel sharded pre-training (PR 9).

``world_size`` workers each own a contiguous shard of the window index
space, draw the IDENTICAL per-epoch batch permutation from a shared
loader seed, and exchange gradients through a shared-memory all-reduce
whose fixed-order float64 accumulation makes every replica's reduced
gradient bit-identical — so the replicas stay in lockstep with no
parameter broadcast.  ``repro.train`` (and ``repro pretrain --workers N``)
route through :func:`pretrain_data_parallel` when ``world_size > 1``;
world size 1 stays on the single-process ``repro.core`` loop and is
bit-identical by construction.

See ``docs/training.md`` for the runbook (topology, failure matrix,
observability).
"""

from .config import DistributedConfig, resolve_distributed
from .coordinator import pretrain_data_parallel
from .reduce import SharedAllReduce, flatten_grads, scatter_grads
from .sharding import Shard, local_indices, shard_assignment, shard_bounds
from .worker import (
    EXIT_ABORTED,
    EXIT_CRASH,
    EXIT_OK,
    EXIT_PEER_LOST,
    WorkerTask,
    run_worker,
)

__all__ = [
    "DistributedConfig",
    "resolve_distributed",
    "pretrain_data_parallel",
    "SharedAllReduce",
    "flatten_grads",
    "scatter_grads",
    "Shard",
    "shard_bounds",
    "shard_assignment",
    "local_indices",
    "WorkerTask",
    "run_worker",
    "EXIT_OK",
    "EXIT_CRASH",
    "EXIT_PEER_LOST",
    "EXIT_ABORTED",
]
