"""Configuration for the data-parallel pre-trainer."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["DistributedConfig", "resolve_distributed"]

_START_METHODS = ("fork", "spawn")


@dataclass
class DistributedConfig:
    """How the N-worker data-parallel pre-trainer runs.

    ``world_size=1`` means "no workers": training stays in-process and is
    bit-identical to the single-process loop (``repro.core.run_pretrain``
    never even imports this package for it).

    Elastic mode (the default): when a worker dies — crashes, is killed,
    or stops heartbeating for ``heartbeat_timeout_s`` — the coordinator
    tears the group down and replays from the last checkpoint (when
    checkpointing is configured; otherwise from scratch), at most
    ``max_restarts`` times before raising
    :class:`~repro.checkpoint.TrainingAborted`.
    """

    world_size: int = 1
    # "fork" is the default on Linux: workers inherit loaded modules and
    # in-memory data at ~20ms each.  The worker entrypoint is a
    # module-level function and every shared handle travels through
    # Process args, so "spawn" works too (macOS/Windows portability).
    start_method: str = "fork"
    heartbeat_timeout_s: float = 30.0  # stale-heartbeat death threshold
    barrier_timeout_s: float = 60.0    # lockstep all-reduce wait bound
    elastic: bool = True               # restart the group on worker death
    max_restarts: int = 2              # elastic restart budget

    def __post_init__(self):
        if self.world_size < 1:
            raise ValueError("world_size must be >= 1")
        if self.start_method not in _START_METHODS:
            raise ValueError(f"start_method must be one of {_START_METHODS}, "
                             f"got {self.start_method!r}")
        if self.heartbeat_timeout_s <= 0 or self.barrier_timeout_s <= 0:
            raise ValueError("timeouts must be positive")
        if self.max_restarts < 0:
            raise ValueError("max_restarts must be >= 0")


def resolve_distributed(value) -> DistributedConfig | None:
    """Normalise the ``distributed=`` wiring every driver accepts.

    ``None`` disables, an int is a world size, a dict is how the config
    round-trips through JSON checkpoint metadata (powering
    ``repro runs resume``), and a :class:`DistributedConfig` passes
    through unchanged.
    """
    if value is None or isinstance(value, DistributedConfig):
        return value
    if isinstance(value, bool):
        raise ValueError("distributed must be None, an int world size, a "
                         "dict, or a DistributedConfig")
    if isinstance(value, int):
        return DistributedConfig(world_size=value)
    if isinstance(value, dict):
        return DistributedConfig(**value)
    raise ValueError("distributed must be None, an int world size, a dict, "
                     "or a DistributedConfig")
