"""The per-rank worker process of the data-parallel pre-trainer.

``run_worker`` is a module-level entrypoint (spawn-compatible: every
shared handle travels through ``Process`` args) that mirrors the
single-process ``repro.core`` loop batch for batch:

* every rank draws the IDENTICAL global batch permutation from the same
  loader RNG and keeps only the indices inside its shard, so the union
  of the per-rank selections is exactly the single-process batch stream;
* local mean gradients are exchanged through
  :class:`~repro.distributed.reduce.SharedAllReduce`; the reduced
  gradient is bit-identical on every replica, so optimizer trajectories
  stay in lockstep with no parameter broadcast;
* recovery checks (NaN loss/grad, divergence) run on the REDUCED values,
  so every replica takes the same skip/rollback/abort decision at the
  same step; on rollback every rank restores the same checkpoint and
  applies the same LR backoff;
* rank 0 owns checkpoint saves and the epoch history records (sent to
  the coordinator over the message queue); every rank reports a
  per-epoch observability digest.

Exit codes tell the coordinator what happened: ``0`` finished, ``1``
crashed (elastic restart), ``3`` a *peer* died and broke a barrier
(restart, not a fault of this rank), ``4`` a recovery policy aborted
training deliberately (no restart — the abort is replayed to the
caller).
"""

from __future__ import annotations

import threading
import time
import traceback
from dataclasses import dataclass, field

import numpy as np

from .. import nn
from ..checkpoint import (
    CheckpointManager,
    RecoveryController,
    TrainingAborted,
    capture_state,
    restore_state,
    rng_state,
)
from ..core.config import PretrainConfig, TimeDRLConfig
from ..core.model import TimeDRL
from ..data.loader import batch_indices
from ..data.prefetch import PrefetchLoader
from ..telemetry import grad_global_norm
from .config import DistributedConfig
from .reduce import SharedAllReduce, flatten_grads, scatter_grads
from .sharding import local_indices

__all__ = ["WorkerTask", "run_worker",
           "EXIT_OK", "EXIT_CRASH", "EXIT_PEER_LOST", "EXIT_ABORTED"]

EXIT_OK = 0
EXIT_CRASH = 1
EXIT_PEER_LOST = 3
EXIT_ABORTED = 4


@dataclass
class WorkerTask:
    """Everything one rank needs, picklable through ``Process`` args."""

    rank: int
    world_size: int
    model_config: TimeDRLConfig
    train_config: PretrainConfig
    dist_config: DistributedConfig
    data_token: object            # see ``_open_shard``
    shard_start: int
    shard_stop: int
    total_windows: int
    checkpoint_dir: str | None = None
    extra_meta: dict | None = None
    resume: bool = False          # forced True on elastic restarts
    hooks: object | None = None   # this rank's TrainingHooks, if any
    incarnation: int = 0          # restart generation (0 = first launch)
    stats: dict = field(default_factory=dict)


def _open_shard(token, start: int, stop: int):
    """Resolve a worker's data token to ``fetch(global_indices) -> (B,T,C)``.

    Tokens are what the coordinator can cheaply ship to a subprocess:

    * a ``synthetic_windows`` spec dict — the worker materializes ONLY
      the canonical generation blocks overlapping its shard
      (:func:`repro.data.specs.materialize_spec_rows`) and indexes the
      local slice;
    * a ``store`` spec dict — the worker memory-maps the on-disk store
      and gathers global indices directly (pages outside the shard are
      never touched);
    * any other spec dict — materialized in full (registry datasets are
      small);
    * an in-memory array / ``ForecastingWindows`` — inherited on fork or
      pickled on spawn; indexed globally.

    Returns ``(fetch, close)``.
    """
    from ..data.datasets import ForecastingWindows
    from ..data.specs import materialize_data_spec, materialize_spec_rows

    if isinstance(token, dict) and "kind" in token:
        kind = token["kind"]
        if kind == "synthetic_windows":
            local = materialize_spec_rows(token, start, stop)
            return (lambda indices: local[indices - start]), (lambda: None)
        if kind == "store":
            from ..data.store import open_store

            dataset = open_store(token["path"])
            return dataset.batch, dataset.close
        return _open_shard(materialize_data_spec(token), start, stop)
    if isinstance(token, ForecastingWindows):
        return (lambda indices: token.batch(indices)[0]), (lambda: None)
    samples = np.asarray(token)
    return (lambda indices: samples[indices]), (lambda: None)


class _Rollback(Exception):
    """Internal signal: every rank restores the last checkpoint."""


class _WorkerLoop:
    """One rank's resumable lockstep loop (mirrors ``core._PretrainLoop``).

    The cursor model is identical to the single-process loop: ``(epoch,
    batch_in_epoch, global_step)`` plus the loader RNG as of the start of
    the current epoch.  ``batch_in_epoch`` counts GLOBAL batches, so a
    checkpoint taken by a distributed run resumes bit-identically in a
    single process and vice versa.
    """

    def __init__(self, task: WorkerTask, reducer: SharedAllReduce,
                 heartbeats, queue):
        self.task = task
        self.reducer = reducer
        self.heartbeats = heartbeats
        self.queue = queue
        self.rank = task.rank
        cfg = task.train_config
        self.cfg = cfg
        self.model = TimeDRL(task.model_config)
        self.model.train()
        self.optimizer = nn.AdamW(self.model.parameters(),
                                  lr=cfg.learning_rate,
                                  weight_decay=cfg.weight_decay)
        self.params = self.model.parameters()
        self.n_params = sum(p.data.size for p in self.params)
        self.rng = np.random.default_rng(cfg.seed)
        self.history: list[dict[str, float]] = []
        self.fetch, self.close_shard = _open_shard(
            task.data_token, task.shard_start, task.shard_stop)
        ckpt = cfg.checkpoint
        self.manager = None
        self.recovery = None
        if ckpt is not None:
            # Every rank opens the manager (rollback restores on all
            # ranks); only rank 0 ever saves, so there are no write races.
            self.manager = CheckpointManager(task.checkpoint_dir,
                                             keep_last=ckpt.keep_last,
                                             best_metric=ckpt.best_metric,
                                             best_mode=ckpt.best_mode)
            self.recovery = RecoveryController(ckpt)
        self.every_n_batches = ckpt.every_n_batches if ckpt else None
        self.every_n_epochs = ckpt.every_n_epochs if ckpt else 1
        # cursor (identical semantics to the single-process loop)
        self.epoch = 0
        self.start_batch = 0
        self.global_step = 0
        self.pending = None
        self.epoch_rng_state = None
        self.active_loader = None
        self.resumed_from_step = None
        # per-epoch observability accumulators
        self.allreduce_seconds = 0.0

    # -- state transfer -------------------------------------------------
    def apply_state(self, state) -> None:
        restore_state(state, self.model, self.optimizer, loader_rng=self.rng)
        self.epoch = state.epoch
        self.start_batch = state.batch_in_epoch
        self.global_step = state.global_step
        self.history[:] = [dict(record) for record in state.history]
        if state.batch_in_epoch > 0:
            self.pending = (dict(state.epoch_sums), state.epoch_batches,
                            state.epoch_samples)
        else:
            self.pending = None

    def _save(self, batch_in_epoch: int, sums, batches: int, samples: int,
              metrics=None, at_epoch_start: bool = False) -> None:
        if self.rank != 0:
            return
        loader = rng_state(self.rng) if at_epoch_start else self.epoch_rng_state
        state = capture_state(
            self.model, self.optimizer, loader_rng_state=loader,
            epoch=self.epoch, batch_in_epoch=batch_in_epoch,
            global_step=self.global_step, epoch_sums=sums,
            epoch_batches=batches, epoch_samples=samples,
            history=self.history)
        self.manager.save(state, metrics=metrics,
                          extra_meta=self.task.extra_meta)

    def _rollback(self) -> None:
        loaded = self.manager.load_latest() if self.manager is not None else None
        if loaded is None:
            raise TrainingAborted(
                "rollback requested but no valid checkpoint is available",
                recoveries=self.recovery.recoveries if self.recovery else 0)
        state, __ = loaded
        self.apply_state(state)
        self.optimizer.lr = self.optimizer.lr * self.recovery.lr_scale()

    # -- data -----------------------------------------------------------
    def _epoch_source(self, skip: int):
        """Yield ``(global_rows, x_local)`` for this rank's share of every
        global batch of the epoch.

        The permutation is drawn from the (shared-seed) loader RNG exactly
        as in the single-process loop; skipped batches still consume their
        slot so a resumed epoch replays bit-identically.
        """
        cfg = self.cfg
        task = self.task
        count = 0
        for indices in batch_indices(task.total_windows, cfg.batch_size,
                                     self.rng):
            if count >= skip:
                mine = local_indices(indices, task.shard_start,
                                     task.shard_stop)
                x = self.fetch(mine) if mine.size else None
                yield len(indices), x
            count += 1
            if (cfg.max_batches_per_epoch is not None
                    and count >= cfg.max_batches_per_epoch):
                return

    def _close_loader(self) -> None:
        if self.active_loader is not None:
            self.active_loader.close()
            self.active_loader = None

    # -- driving --------------------------------------------------------
    def run_all(self) -> None:
        cfg = self.cfg
        if (self.manager is not None and cfg.checkpoint.wants_rollback
                and self.global_step == 0):
            self.epoch_rng_state = rng_state(self.rng)
            self._save(0, {}, 0, 0, at_epoch_start=True)
        try:
            while self.epoch < cfg.epochs:
                try:
                    self._run_epoch()
                except _Rollback:
                    self._close_loader()
                    self._rollback()
        finally:
            self._close_loader()
            self.close_shard()

    def _run_epoch(self) -> None:
        cfg = self.cfg
        task = self.task
        epoch = self.epoch
        epoch_started = time.perf_counter()
        self.allreduce_seconds = 0.0
        skip = self.start_batch
        self.start_batch = 0
        if self.manager is not None:
            self.epoch_rng_state = rng_state(self.rng)
        if self.pending is not None:
            sums, batches, samples = self.pending
            self.pending = None
        else:
            sums = {"total": 0.0, "predictive": 0.0, "contrastive": 0.0}
            batches = 0
            samples = 0
        batch_in_epoch = skip
        local_samples = 0

        source = self._epoch_source(skip)
        if cfg.prefetch:
            source = self.active_loader = PrefetchLoader(
                source, depth=cfg.prefetch_depth)
        for global_rows, x in source:
            step = self.global_step
            self.heartbeats[self.rank] = time.monotonic()
            self.optimizer.zero_grad()
            flat = None
            weight = 0.0
            local_losses = (0.0, 0.0, 0.0)
            if x is not None and len(x):
                losses = self.model.pretraining_losses(x)
                if task.hooks is not None:
                    task.hooks.on_loss(losses, epoch, batch_in_epoch, step)
                local_losses = (float(losses["total"].data),
                                float(losses["predictive"].data),
                                float(losses["contrastive"].data))
                losses["total"].backward()
                if task.hooks is not None:
                    task.hooks.on_after_backward(self.model, epoch,
                                                 batch_in_epoch, step)
                flat = flatten_grads(self.params, self.n_params)
                weight = float(len(x))
            reduce_started = time.perf_counter()
            reduced, red = self.reducer.all_reduce(self.rank, flat, weight,
                                                   local_losses)
            self.allreduce_seconds += time.perf_counter() - reduce_started
            # Recovery decisions use the REDUCED values so every replica
            # takes the identical action at the identical step.
            if self.recovery is not None:
                action = self.recovery.check_loss(red["total"], epoch,
                                                  batch_in_epoch, step)
                if action == "skip_batch":
                    batch_in_epoch += 1
                    self.global_step += 1
                    continue
                if action == "rollback":
                    raise _Rollback()
            scatter_grads(self.params, reduced)
            grad_norm = None
            if cfg.grad_clip:
                grad_norm = nn.clip_grad_norm(self.params, cfg.grad_clip)
            if self.recovery is not None:
                # Post-scatter the live grads are the reduced gradient in
                # parameter dtype, so this matches the single-process
                # computation bit for bit at world size 1.
                norm_value = (grad_norm if grad_norm is not None
                              else grad_global_norm(self.params))
                action = self.recovery.check_grad(float(norm_value), epoch,
                                                  batch_in_epoch, step)
                if action == "skip_batch":
                    batch_in_epoch += 1
                    self.global_step += 1
                    continue
                if action == "rollback":
                    raise _Rollback()
            self.optimizer.step()
            for key, value in zip(sums, red.values()):
                sums[key] += value
            batches += 1
            samples += global_rows
            local_samples += int(weight)
            batch_in_epoch += 1
            self.global_step += 1
            if (self.manager is not None and self.every_n_batches
                    and batch_in_epoch % self.every_n_batches == 0):
                means = {key: value / batches for key, value in sums.items()}
                self._save(batch_in_epoch, sums, batches, samples,
                           metrics=means)
            if task.hooks is not None:
                task.hooks.on_batch_end(epoch, batch_in_epoch - 1, step)

        self._close_loader()
        if batches == 0:
            raise ValueError("pre-training data yielded no batches")
        epoch_stats = {key: value / batches for key, value in sums.items()}
        epoch_stats["epoch"] = float(epoch)
        self.history.append(epoch_stats)
        epoch_seconds = time.perf_counter() - epoch_started
        if self.rank == 0:
            self.queue.put({"type": "epoch", "rank": self.rank,
                            "epoch": epoch, "stats": dict(epoch_stats),
                            "samples": samples, "seconds": epoch_seconds})
        self.queue.put({"type": "epoch_obs", "rank": self.rank,
                        "epoch": epoch, "samples": local_samples,
                        "seconds": epoch_seconds,
                        "allreduce_seconds": self.allreduce_seconds})
        if self.recovery is not None:
            action = self.recovery.check_epoch(epoch_stats["total"], epoch)
            if action == "rollback":
                raise _Rollback()
        self.epoch += 1
        if self.manager is not None and (self.epoch % self.every_n_epochs == 0
                                         or self.epoch == cfg.epochs):
            self._save(0, {}, 0, 0, metrics=epoch_stats, at_epoch_start=True)


def run_worker(task: WorkerTask, reducer: SharedAllReduce, heartbeats,
               queue) -> None:
    """Process entrypoint for one rank.  Exits via ``SystemExit`` with one
    of the ``EXIT_*`` codes; the coordinator keys its elastic policy off
    the exit status, with queue messages carrying the detail."""
    try:
        loop = _WorkerLoop(task, reducer, heartbeats, queue)
        if loop.manager is not None and (task.resume or
                                         task.train_config.checkpoint.resume):
            loaded = loop.manager.load_latest()
            if loaded is not None:
                loop.apply_state(loaded[0])
                loop.resumed_from_step = loaded[0].global_step
        loop.run_all()
        if task.rank == 0:
            loop.model.eval()
            queue.put({"type": "result", "rank": 0,
                       "model_state": loop.model.state_dict(),
                       "history": [dict(r) for r in loop.history],
                       "global_step": loop.global_step,
                       "resumed_from_step": loop.resumed_from_step,
                       "recoveries": (loop.recovery.recoveries
                                      if loop.recovery else 0)})
        queue.close()
        queue.join_thread()
        raise SystemExit(EXIT_OK)
    except threading.BrokenBarrierError:
        queue.put({"type": "peer_lost", "rank": task.rank})
        queue.close()
        queue.join_thread()
        raise SystemExit(EXIT_PEER_LOST) from None
    except TrainingAborted as error:
        queue.put({"type": "aborted", "rank": task.rank,
                   "error": str(error), "recoveries": error.recoveries})
        queue.close()
        queue.join_thread()
        raise SystemExit(EXIT_ABORTED) from None
    except SystemExit:
        raise
    except BaseException:
        # Includes SimulatedCrash from fault-injection hooks: this rank is
        # "dead" and the coordinator's elastic restart takes over.
        try:
            queue.put({"type": "error", "rank": task.rank,
                       "error": traceback.format_exc(limit=20)})
            queue.close()
            queue.join_thread()
        except Exception:
            pass
        raise SystemExit(EXIT_CRASH) from None
