"""Shared-memory gradient all-reduce.

The reducer is a ``world_size x n_params`` float64 slab of anonymous
shared memory (``multiprocessing.RawArray`` — inherited on fork, pickled
through ``Process`` args on spawn; no named segments, so nothing for the
resource tracker to leak) plus two barriers:

1. every rank writes its local mean gradient and loss stats into its own
   row, then waits on the *enter* barrier;
2. every rank reads ALL rows and accumulates them **in fixed rank
   order** in float64 — identical operations on identical values, so
   every replica computes a bit-identical reduced gradient;
3. the *leave* barrier keeps rank r from overwriting its row for batch
   k+1 while a peer is still reading batch k.

Weighting: worker r contributes its per-row *mean* gradient with weight
``k_r`` (its row count in the global batch).  Since the global batch
loss is the mean over all B rows and the shards partition the batch,
``sum_r (k_r / B) * mean_r`` is exactly the full-batch gradient up to
floating-point reassociation.

Barrier waits carry a timeout: when a peer dies mid-step the survivors
raise ``BrokenBarrierError`` instead of hanging, exit with a distinct
status, and the coordinator's elastic restart takes over.
"""

from __future__ import annotations

import numpy as np

__all__ = ["SharedAllReduce"]

# Per-rank stats row: [weight, total, predictive, contrastive].
_STATS = 4
_LOSS_KEYS = ("total", "predictive", "contrastive")


class SharedAllReduce:
    """Barrier-synchronised weighted-mean all-reduce over shared memory."""

    def __init__(self, ctx, world_size: int, n_params: int,
                 barrier_timeout_s: float = 60.0):
        if world_size < 1:
            raise ValueError("world_size must be >= 1")
        if n_params < 1:
            raise ValueError("n_params must be >= 1")
        self.world_size = world_size
        self.n_params = n_params
        self.timeout = barrier_timeout_s
        self._grads = ctx.RawArray("d", world_size * n_params)
        self._stats = ctx.RawArray("d", world_size * _STATS)
        self._enter = ctx.Barrier(world_size)
        self._leave = ctx.Barrier(world_size)

    def _views(self) -> tuple[np.ndarray, np.ndarray]:
        """Per-process numpy views over the shared slabs (cheap, uncached:
        views must be rebuilt after fork/spawn, never pickled)."""
        grads = np.frombuffer(self._grads, dtype=np.float64)
        stats = np.frombuffer(self._stats, dtype=np.float64)
        return (grads.reshape(self.world_size, self.n_params),
                stats.reshape(self.world_size, _STATS))

    def all_reduce(self, rank: int, flat_grads: np.ndarray | None,
                   weight: float, losses: tuple[float, float, float],
                   ) -> tuple[np.ndarray, dict[str, float]]:
        """Exchange one step's gradients; returns the reduced gradient
        (float64, length ``n_params``) and the reduced loss means.

        ``flat_grads`` is the rank's local mean gradient (``None`` with
        ``weight=0`` when the rank owned no rows of this batch — it still
        participates in both barriers to keep the group in lockstep).
        """
        grads, stats = self._views()
        if weight > 0.0 and flat_grads is not None:
            grads[rank, :] = flat_grads
        else:
            weight = 0.0
            grads[rank, :] = 0.0
        stats[rank, 0] = weight
        for column, value in enumerate(losses, start=1):
            stats[rank, column] = value  # raw (unweighted) per-rank means
        self._enter.wait(self.timeout)
        contributors = [peer for peer in range(self.world_size)
                        if stats[peer, 0] > 0.0]
        if len(contributors) == 1:
            # Single contributor (world of one, or a tail batch that fell
            # entirely inside one shard): take its row verbatim.  The
            # multiply-then-divide round trip below can be off by one
            # float64 ulp, and this path must be *bit*-identical to the
            # single-process loop.
            peer = contributors[0]
            reduced = grads[peer].copy()
            loss_means = stats[peer, 1:].copy()
        else:
            reduced = np.zeros(self.n_params, dtype=np.float64)
            loss_means = np.zeros(_STATS - 1, dtype=np.float64)
            total_weight = 0.0
            for peer in contributors:  # fixed order: bit-identical replicas
                peer_weight = stats[peer, 0]
                reduced += grads[peer] * peer_weight
                loss_means += stats[peer, 1:] * peer_weight
                total_weight += peer_weight
            if total_weight > 0.0:
                reduced /= total_weight
                loss_means /= total_weight
        self._leave.wait(self.timeout)
        return reduced, dict(zip(_LOSS_KEYS, loss_means.tolist()))


def flatten_grads(parameters, n_params: int) -> np.ndarray:
    """Pack every parameter's gradient into one float64 vector.

    float32 values round-trip float32 → float64 → float32 exactly, so a
    world of one reducing through shared memory stays bit-identical to
    stepping on the local gradients directly.
    """
    flat = np.empty(n_params, dtype=np.float64)
    offset = 0
    for param in parameters:
        size = param.data.size
        grad = param.grad
        if grad is None:
            flat[offset:offset + size] = 0.0
        else:
            flat[offset:offset + size] = np.asarray(
                grad, dtype=np.float64).ravel()
        offset += size
    if offset != n_params:
        raise ValueError(f"parameter vector is {offset} elements, reducer "
                         f"sized for {n_params}")
    return flat


def scatter_grads(parameters, flat: np.ndarray) -> None:
    """Unpack a reduced float64 vector into each parameter's ``.grad``
    (cast back to the parameter's dtype)."""
    offset = 0
    for param in parameters:
        size = param.data.size
        param.grad = flat[offset:offset + size].reshape(
            param.data.shape).astype(param.data.dtype)
        offset += size


__all__ += ["flatten_grads", "scatter_grads"]
