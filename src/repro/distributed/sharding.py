"""Deterministic shard assignment for data-parallel workers.

Every worker draws the *same* global batch permutation from the same
loader RNG (lockstep with the single-process loop), then keeps only the
indices falling inside its own contiguous shard ``[start, stop)``.  The
union of the per-rank selections is exactly the global batch, so any
world size trains on the identical global window stream — that is what
makes world_size=1 trivially bit-identical and larger worlds equivalent
up to floating-point reassociation of the batch mean.

Shard *materialization* leans on the chunk-invariance of
:mod:`repro.data.specs`: synthetic specs generate only the canonical
blocks overlapping the shard (see
:func:`repro.data.specs.materialize_spec_rows`), stores memory-map only
the pages a worker's rows touch, and in-memory arrays are sliced.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Shard", "shard_bounds", "shard_assignment", "local_indices"]


@dataclass(frozen=True)
class Shard:
    """One worker's contiguous slice of the global window index space."""

    rank: int
    world_size: int
    start: int
    stop: int

    @property
    def rows(self) -> int:
        return self.stop - self.start


def shard_bounds(total: int, world_size: int) -> list[tuple[int, int]]:
    """Contiguous ``[start, stop)`` bounds partitioning ``range(total)``.

    The remainder spreads over the first ranks, so shard sizes differ by
    at most one row and the assignment is a pure function of
    ``(total, world_size)`` — any incarnation of the group (including an
    elastic restart) computes the identical partition.
    """
    if total < 0:
        raise ValueError("total must be >= 0")
    if world_size < 1:
        raise ValueError("world_size must be >= 1")
    base, extra = divmod(total, world_size)
    bounds = []
    lo = 0
    for rank in range(world_size):
        hi = lo + base + (1 if rank < extra else 0)
        bounds.append((lo, hi))
        lo = hi
    return bounds


def shard_assignment(total: int, world_size: int) -> list[Shard]:
    """The full deterministic rank → shard assignment."""
    return [Shard(rank=rank, world_size=world_size, start=lo, stop=hi)
            for rank, (lo, hi) in enumerate(shard_bounds(total, world_size))]


def local_indices(indices: np.ndarray, start: int, stop: int) -> np.ndarray:
    """The subset of a global batch owned by shard ``[start, stop)``.

    Order within the batch is preserved, so concatenating every rank's
    selection in rank order is a permutation-free reassembly of the
    global batch's shard-grouped view.
    """
    return indices[(indices >= start) & (indices < stop)]
