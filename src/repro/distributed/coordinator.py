"""The coordinator: launches, monitors and (elastically) restarts the
worker group of a data-parallel pre-training run.

The coordinator never trains.  It owns the shared-memory reducer and the
heartbeat slab, ships each rank a :class:`~repro.distributed.worker.WorkerTask`,
and then watches two failure channels:

* **exit codes** — a rank that dies (crash, kill, fault-injected
  ``SimulatedCrash``) exits non-zero or is signalled; survivors blocked
  on a reduce barrier time out with ``BrokenBarrierError`` and exit
  ``EXIT_PEER_LOST`` (the coordinator also terminates them proactively);
* **heartbeats** — each rank stamps a monotonic timestamp into shared
  memory every batch; a stale stamp beyond ``heartbeat_timeout_s`` marks
  a hung (not dead) rank.

In elastic mode a dead group is relaunched with ``resume=True`` — the
replacement replays from the last checkpoint saved by rank 0 (or from
scratch when checkpointing is off), bounded by ``max_restarts`` before a
:class:`~repro.checkpoint.TrainingAborted`.  A deliberate abort by a
recovery policy inside the workers (exit ``EXIT_ABORTED``) is never
restarted: the abort is replayed to the caller, matching the
single-process contract.

Observability mirrors the training spine: ``worker`` telemetry events
(started / dead / restart / finished) on the run, and ``dist_*`` obs
metric families (``dist_allreduce_seconds``, ``dist_worker_restarts``,
per-worker throughput gauges).
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import queue as queue_module
import time

import numpy as np

from ..checkpoint import TrainingAborted
from ..core.config import PretrainConfig, TimeDRLConfig
from ..core.model import TimeDRL
from ..data.datasets import ForecastingWindows
from ..data.store import ShardedDataset, resolve_data_source
from ..obs.metrics import enabled as obs_enabled
from ..obs.metrics import get_registry as obs_registry
from ..telemetry import NULL_RUN, Run, console_log
from .config import DistributedConfig
from .reduce import SharedAllReduce
from .sharding import shard_bounds
from .worker import EXIT_ABORTED, EXIT_OK, EXIT_PEER_LOST, WorkerTask, run_worker

__all__ = ["pretrain_data_parallel"]

_POLL_SECONDS = 0.05
_JOIN_TIMEOUT = 10.0


def _resolve_data_token(data) -> tuple[object, int]:
    """Resolve the ``data`` argument to ``(picklable token, total windows)``.

    Spec dicts stay spec dicts (workers materialize only their shard's
    generation blocks); stores travel as their ``kind='store'`` spec so
    workers re-open the memory maps themselves; in-memory arrays and
    window views travel by value (inherited on fork, pickled on spawn).
    """
    from ..data.specs import materialize_data_spec

    if isinstance(data, dict) and "kind" in data:
        kind = data["kind"]
        if kind == "synthetic_windows":
            return data, int(data["windows"])
        if kind == "store":
            dataset = resolve_data_source(data["path"])
            try:
                return data, len(dataset)
            finally:
                dataset.close()
        data = materialize_data_spec(data)
    data = resolve_data_source(data)
    if isinstance(data, ShardedDataset):
        return data.store_spec(), len(data)
    if isinstance(data, ForecastingWindows):
        return data, len(data)
    samples = np.asarray(data)
    return samples, len(samples)


def _rank_hooks(hooks, rank: int):
    """Per-rank hook routing: a dict maps ranks to hooks; a bare
    ``TrainingHooks`` rides on rank 0 (mirroring the single-process
    loop, which *is* rank 0 at world size 1)."""
    if hooks is None:
        return None
    if isinstance(hooks, dict):
        return hooks.get(rank)
    return hooks if rank == 0 else None


class _Group:
    """One incarnation of the worker group."""

    def __init__(self, ctx, tasks, reducer, heartbeats, queue):
        now = time.monotonic()
        for rank in range(len(tasks)):
            heartbeats[rank] = now
        self.processes = [
            ctx.Process(target=run_worker,
                        args=(task, reducer, heartbeats, queue),
                        name=f"repro-dp-{task.rank}", daemon=True)
            for task in tasks]
        for process in self.processes:
            process.start()

    def alive(self) -> bool:
        return any(process.is_alive() for process in self.processes)

    def exitcodes(self) -> list[int | None]:
        return [process.exitcode for process in self.processes]

    def terminate_and_join(self) -> None:
        for process in self.processes:
            if process.is_alive():
                process.terminate()
        deadline = time.monotonic() + _JOIN_TIMEOUT
        for process in self.processes:
            process.join(timeout=max(0.0, deadline - time.monotonic()))
            if process.is_alive():
                process.kill()
                process.join(timeout=_JOIN_TIMEOUT)


def pretrain_data_parallel(model_config: TimeDRLConfig, data,
                           train_config: PretrainConfig | None = None,
                           distributed: DistributedConfig | None = None,
                           run=None, hooks=None):
    """Data-parallel counterpart of :func:`repro.core.run_pretrain`.

    Same contract and return type (:class:`~repro.core.PretrainResult`,
    with ``world_size``/``worker_restarts`` filled in); ``hooks`` may be
    a single ``TrainingHooks`` (applied to rank 0) or a ``{rank: hooks}``
    dict for fault-injection on specific ranks.
    """
    from ..core.pretrain import (
        PretrainResult,
        _checkpoint_extra_meta,
        _resolve_checkpoint_dir,
    )

    train_config = train_config or PretrainConfig()
    dist = distributed or DistributedConfig()
    token, total = _resolve_data_token(data)

    owns_run = False
    if run is None:
        if train_config.telemetry:
            run = Run.create(root=train_config.run_root,
                             name=train_config.run_name,
                             model_config=model_config,
                             train_config=train_config,
                             seed=train_config.seed,
                             log_to_console=train_config.verbose)
            owns_run = True
        else:
            run = NULL_RUN

    ckpt_cfg = train_config.checkpoint
    checkpoint_dir = extra_meta = None
    if ckpt_cfg is not None:
        checkpoint_dir = _resolve_checkpoint_dir(ckpt_cfg, train_config, run)
        extra_meta = _checkpoint_extra_meta(model_config, train_config,
                                            ckpt_cfg, data)
        if extra_meta["data_spec"] is None and isinstance(token, dict):
            extra_meta["data_spec"] = token
        extra_meta["distributed"] = dataclasses.asdict(dist)

    n_params = sum(p.data.size for p in TimeDRL(model_config).parameters())
    ctx = multiprocessing.get_context(dist.start_method)
    heartbeats = ctx.RawArray("d", dist.world_size)
    messages = ctx.Queue()
    bounds = shard_bounds(total, dist.world_size)

    obs_on = obs_enabled()
    if obs_on:
        obs_registry().gauge("dist_world_size",
                             "Workers in the data-parallel group").set(
            dist.world_size)

    def make_tasks(resume: bool, incarnation: int) -> list[WorkerTask]:
        return [WorkerTask(rank=rank, world_size=dist.world_size,
                           model_config=model_config,
                           train_config=train_config, dist_config=dist,
                           data_token=token, shard_start=lo, shard_stop=hi,
                           total_windows=total,
                           checkpoint_dir=(str(checkpoint_dir)
                                           if checkpoint_dir else None),
                           extra_meta=extra_meta, resume=resume,
                           hooks=_rank_hooks(hooks, rank),
                           incarnation=incarnation)
                for rank, (lo, hi) in enumerate(bounds)]

    start = time.perf_counter()
    restarts = 0
    result_payload = None
    try:
        with run.span("pretrain", epochs=train_config.epochs,
                      batch_size=train_config.batch_size,
                      world_size=dist.world_size):
            incarnation = 0
            while True:
                tasks = make_tasks(resume=(incarnation > 0), incarnation=incarnation)
                # A fresh reducer per incarnation: a worker killed while
                # parked at a barrier leaves a stale waiter count behind,
                # which would desync (and hang) a group that inherited it.
                reducer = SharedAllReduce(
                    ctx, dist.world_size, n_params,
                    barrier_timeout_s=dist.barrier_timeout_s)
                group = _Group(ctx, tasks, reducer, heartbeats, messages)
                if run.enabled:
                    for process, task in zip(group.processes, tasks):
                        run.emit("worker", action="started", rank=task.rank,
                                 pid=process.pid, incarnation=incarnation,
                                 shard_start=task.shard_start,
                                 shard_stop=task.shard_stop)
                outcome = _monitor(group, dist, heartbeats, messages, run,
                                   train_config, obs_on)
                group.terminate_and_join()
                _drain(messages, run, train_config, obs_on)
                if outcome.kind == "finished":
                    result_payload = outcome.result
                    break
                if outcome.kind == "aborted":
                    raise TrainingAborted(outcome.detail,
                                          recoveries=outcome.recoveries)
                # outcome.kind == "dead"
                if not dist.elastic or restarts >= dist.max_restarts:
                    raise TrainingAborted(
                        f"worker group died ({outcome.detail}) and the "
                        f"elastic restart budget is exhausted "
                        f"({restarts}/{dist.max_restarts} restarts used)")
                restarts += 1
                incarnation += 1
                if obs_on:
                    obs_registry().counter(
                        "dist_worker_restarts",
                        "Elastic worker-group restarts").inc()
                if run.enabled:
                    run.emit("worker", action="restart", detail=outcome.detail,
                             incarnation=incarnation, restarts=restarts)
                if train_config.verbose:
                    console_log(f"[distributed] {outcome.detail}; restarting "
                                f"group (attempt {restarts}/"
                                f"{dist.max_restarts})")
    except TrainingAborted as error:
        if owns_run:
            run.emit("health", check="aborted", phase="run",
                     error=type(error).__name__, detail=str(error))
            run.finish("failed")
        raise
    except BaseException as error:
        if owns_run:
            run.emit("health", check="exception", phase="run",
                     error=type(error).__name__, detail=str(error))
            run.record_crash(error)
        raise
    finally:
        messages.close()
        messages.join_thread()
    elapsed = time.perf_counter() - start

    model = TimeDRL(model_config)
    model.load_state_dict(result_payload["model_state"], strict=True)
    model.eval()
    history = [dict(record) for record in result_payload["history"]]
    if run.enabled:
        run.emit("worker", action="finished", world_size=dist.world_size,
                 restarts=restarts,
                 global_step=result_payload["global_step"])
        if history:
            run.log_summary(final_total=history[-1]["total"],
                            final_predictive=history[-1]["predictive"],
                            final_contrastive=history[-1]["contrastive"],
                            epochs=len(history),
                            wall_clock_seconds=elapsed)
    if owns_run:
        run.finish("completed")
    return PretrainResult(
        model=model, history=history, wall_clock_seconds=elapsed,
        profile=None, run_id=run.run_id,
        run_dir=str(run.directory) if run.directory is not None else None,
        checkpoint_dir=str(checkpoint_dir) if checkpoint_dir else None,
        resumed_from_step=result_payload["resumed_from_step"],
        world_size=dist.world_size, worker_restarts=restarts)


@dataclasses.dataclass
class _Outcome:
    kind: str                 # "finished" | "dead" | "aborted"
    detail: str = ""
    result: dict | None = None
    recoveries: int = 0


def _handle_message(message, run, train_config, obs_on) -> dict | None:
    """Process one worker message; returns the payload for terminal ones."""
    kind = message["type"]
    if kind == "epoch":
        stats = message["stats"]
        metrics = {key: stats[key]
                   for key in ("total", "predictive", "contrastive")}
        metrics["epoch_seconds"] = message["seconds"]
        metrics["samples"] = message["samples"]
        if message["seconds"] > 0:
            metrics["throughput"] = message["samples"] / message["seconds"]
        if run.enabled:
            run.log_epoch(message["epoch"], **metrics)
        if train_config.verbose:
            console_log(f"[pretrain] epoch {message['epoch']}: "
                        f"total={stats['total']:.4f} "
                        f"P={stats['predictive']:.4f} "
                        f"C={stats['contrastive']:.4f}")
        return None
    if kind == "epoch_obs":
        if obs_on:
            registry = obs_registry()
            registry.histogram(
                "dist_allreduce_seconds",
                "Per-epoch wall-clock a rank spent in gradient all-reduce",
                labels=("rank",),
                buckets=(0.001, 0.01, 0.05, 0.1, 0.5, 1, 5, 30, 60, 300),
            ).labels(rank=str(message["rank"])).observe(
                message["allreduce_seconds"])
            if message["seconds"] > 0:
                registry.gauge(
                    "dist_worker_throughput",
                    "Windows/s a rank processed in its last epoch",
                    labels=("rank",)).labels(rank=str(message["rank"])).set(
                    message["samples"] / message["seconds"])
        return None
    return message  # result / aborted / error / peer_lost


def _monitor(group: _Group, dist: DistributedConfig, heartbeats, messages,
             run, train_config, obs_on) -> _Outcome:
    """Drain messages and watch exit codes + heartbeats until the group
    finishes, aborts, or loses a worker."""
    result = None
    abort = None
    error_detail = None
    flush_deadline = None  # grace period for the queue after group exit
    while True:
        try:
            while True:
                message = _handle_message(messages.get(timeout=_POLL_SECONDS),
                                          run, train_config, obs_on)
                if message is None:
                    continue
                if message["type"] == "result":
                    result = message
                elif message["type"] == "aborted":
                    abort = message
                elif message["type"] == "error":
                    error_detail = (f"rank {message['rank']} crashed:\n"
                                    f"{message['error']}")
        except queue_module.Empty:
            pass

        codes = group.exitcodes()
        if group.alive():
            # A rank that crashed or was killed while peers still run:
            # tear down now — the barrier timeout is only the backstop.
            dead = [rank for rank, code in enumerate(codes)
                    if code is not None and code not in (EXIT_OK, EXIT_ABORTED,
                                                         EXIT_PEER_LOST)]
            if dead:
                rank = dead[0]
                if run.enabled:
                    run.emit("worker", action="dead", rank=rank,
                             exitcode=codes[rank], reason="exit")
                return _Outcome("dead", detail=error_detail or
                                f"rank {rank} exited with status {codes[rank]}")
            now = time.monotonic()
            stale = [rank for rank, process in enumerate(group.processes)
                     if process.is_alive()
                     and now - heartbeats[rank] > dist.heartbeat_timeout_s]
            if stale:
                rank = stale[0]
                if run.enabled:
                    run.emit("worker", action="dead", rank=rank,
                             reason="heartbeat_timeout",
                             stale_seconds=now - heartbeats[rank])
                return _Outcome("dead", detail=f"rank {rank} heartbeat stale "
                                f"for {now - heartbeats[rank]:.1f}s")
            continue

        # Group fully exited: terminal messages may still be in the pipe —
        # keep draining for a bounded grace period before deciding on exit
        # codes alone.
        if abort is not None:
            return _Outcome("aborted", detail=abort["error"],
                            recoveries=abort["recoveries"])
        if all(code == EXIT_OK for code in codes) and result is not None:
            return _Outcome("finished", result=result)
        crashed = [(rank, code) for rank, code in enumerate(codes)
                   if code not in (EXIT_OK, EXIT_ABORTED, EXIT_PEER_LOST)]
        if crashed and error_detail is not None:
            rank, code = crashed[0]
            if run.enabled:
                run.emit("worker", action="dead", rank=rank, exitcode=code,
                         reason="exit")
            return _Outcome("dead", detail=error_detail)
        if flush_deadline is None:
            # Crash tracebacks arrive almost instantly (the worker flushed
            # its queue before exiting); results/abort details deserve the
            # longer join grace.
            grace = 1.0 if crashed else _JOIN_TIMEOUT
            flush_deadline = time.monotonic() + grace
        if time.monotonic() < flush_deadline:
            continue
        if crashed:
            rank, code = crashed[0]
            if run.enabled:
                run.emit("worker", action="dead", rank=rank, exitcode=code,
                         reason="exit")
            return _Outcome("dead",
                            detail=f"rank {rank} exited with status {code}")
        if any(code == EXIT_ABORTED for code in codes):
            return _Outcome("aborted",
                            detail="a recovery policy aborted training "
                            "(worker abort detail was lost)")
        if all(code == EXIT_OK for code in codes):  # pragma: no cover
            return _Outcome("dead", detail="group exited cleanly without a "
                            "result payload")
        rank = next(rank for rank, code in enumerate(codes)
                    if code == EXIT_PEER_LOST)
        return _Outcome("dead", detail=f"rank {rank} lost a peer at a reduce "
                        "barrier")


def _drain(messages, run, train_config, obs_on) -> None:
    """Absorb whatever the (now joined) group left on the queue so late
    epoch records still feed telemetry and the next incarnation starts
    with an empty mailbox."""
    try:
        while True:
            _handle_message(messages.get_nowait(), run, train_config, obs_on)
    except queue_module.Empty:
        pass
