#!/usr/bin/env python3
"""Quickstart: pre-train TimeDRL and use both embedding levels.

Walks the full paper pipeline in under a minute on a laptop CPU:

1. generate an ETTh1-like multivariate series,
2. self-supervised pre-training (timestamp-predictive + instance-
   contrastive tasks, no augmentations, dropout-only views),
3. linear evaluation of the timestamp-level embeddings on forecasting,
4. a peek at the disentangled instance-level [CLS] embedding.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core import (
    PretrainConfig,
    TimeDRLConfig,
    linear_evaluate_forecasting,
    pretrain,
)
from repro.data import load_forecasting_dataset, make_forecasting_data


def main() -> None:
    # ------------------------------------------------------------------
    # 1. Data: an ETTh1-like series (7 features, hourly periodicities).
    # ------------------------------------------------------------------
    series = load_forecasting_dataset("ETTh1", scale=0.08, seed=0)
    print(f"series: {series.shape[0]} timesteps x {series.shape[1]} features")

    data = make_forecasting_data(series, seq_len=64, pred_len=24, stride=4)
    print(f"windows: train={len(data.train)} val={len(data.val)} test={len(data.test)}")

    # ------------------------------------------------------------------
    # 2. Self-supervised pre-training.
    # ------------------------------------------------------------------
    config = TimeDRLConfig(
        seq_len=64,
        input_channels=7,
        patch_len=8,            # P: 8 timesteps per token
        stride=8,               # non-overlapping patches -> T_p = 8 tokens
        d_model=32,
        num_heads=4,
        num_layers=2,
        dropout=0.1,            # the *only* source of view randomness
        lambda_weight=1.0,      # L = L_P + lambda * L_C (Eq. 19)
        channel_independence=True,  # the paper's forecasting setting
    )
    result = pretrain(config, data.train,
                      PretrainConfig(epochs=3, batch_size=32, verbose=True))
    print(f"pre-trained in {result.wall_clock_seconds:.1f}s, "
          f"final loss {result.final_loss:.4f}")

    # ------------------------------------------------------------------
    # 3. Linear evaluation on forecasting (frozen encoder).
    # ------------------------------------------------------------------
    scores = linear_evaluate_forecasting(result.model, data)
    print(f"linear-probe forecasting: MSE={scores.mse:.4f} MAE={scores.mae:.4f}")

    # ------------------------------------------------------------------
    # 4. Dual-level embeddings from one batch.
    # ------------------------------------------------------------------
    x, __ = data.test.batch(np.arange(4))
    instance, timestamp = result.model.embed(x)
    print(f"instance-level  z_i: {instance.shape}  ([CLS] token per channel series)")
    print(f"timestamp-level z_t: {timestamp.shape}  (one embedding per patch)")


if __name__ == "__main__":
    main()
