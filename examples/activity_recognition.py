#!/usr/bin/env python3
"""Human-activity recognition with instance-level embeddings.

The scenario from the paper's introduction: a smartwatch/phone streams
accelerometer windows, most of them unlabeled.  TimeDRL pre-trains on the
unlabeled pool; a linear probe on the frozen [CLS] embeddings then
classifies activities — and we compare against the pooling strategies the
paper ablates (Table VII) to show why the dedicated [CLS] token matters.

Run:  python examples/activity_recognition.py
"""

import numpy as np

from repro.core import (
    PretrainConfig,
    TimeDRL,
    TimeDRLConfig,
    linear_evaluate_classification,
    pretrain,
)
from repro.data import load_classification_dataset, make_classification_data


def main() -> None:
    # HAR-like data: 9 inertial channels, 6 activities, 128-step windows.
    x, y = load_classification_dataset("HAR", scale=0.04, seed=0)
    data = make_classification_data(x, y, seed=0)
    print(f"samples: train={len(data.x_train)} test={len(data.x_test)}, "
          f"{data.n_features} channels, {data.n_classes} activities")

    results = {}
    for pooling in ("cls", "gap", "last"):
        config = TimeDRLConfig(
            seq_len=data.length,
            input_channels=data.n_features,
            patch_len=16,
            stride=16,
            d_model=32,
            num_heads=4,
            num_layers=2,
            pooling=pooling,
            channel_independence=False,  # the paper's classification setting
            seed=0,
        )
        outcome = pretrain(config, data.x_train,
                           PretrainConfig(epochs=3, batch_size=32, seed=0))
        scores = linear_evaluate_classification(outcome.model, data, epochs=100)
        results[pooling] = scores
        print(f"pooling={pooling:>4}: ACC={scores.accuracy:5.1f}% "
              f"MF1={scores.macro_f1:5.1f}% kappa={scores.kappa:5.1f}")

    best = max(results, key=lambda k: results[k].accuracy)
    print(f"\nbest instance-embedding strategy here: {best!r} "
          f"(the paper's Table VII shows [CLS] winning at full scale)")

    # Inspect the embedding space: per-class mean [CLS] embedding distances.
    config = TimeDRLConfig(seq_len=data.length, input_channels=data.n_features,
                           patch_len=16, stride=16, d_model=32, num_heads=4,
                           num_layers=2, seed=0)
    model = TimeDRL(config)
    embeddings = model.instance_embeddings(data.x_test)
    print(f"\ninstance embeddings for the test split: {embeddings.shape}")
    per_class = {cls: embeddings[data.y_test == cls].mean(axis=0)
                 for cls in np.unique(data.y_test)}
    classes = sorted(per_class)
    print("pairwise distances between class-mean embeddings (random encoder):")
    for a in classes[:3]:
        row = " ".join(f"{np.linalg.norm(per_class[a] - per_class[b]):5.2f}"
                       for b in classes[:3])
        print(f"  class {a}: {row}")


if __name__ == "__main__":
    main()
