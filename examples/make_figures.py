#!/usr/bin/env python3
"""Render the paper's chart-style results (Figs. 4–6) as SVG figures.

Reads the markdown tables archived by the benchmark harness under
``results/`` (run ``pytest benchmarks/ --benchmark-only`` first) and writes
browser-viewable SVG figures next to them — the reproduction's equivalent
of the paper's Figures 4, 5 and 6.

Run:  python examples/make_figures.py
"""

import pathlib

from repro.experiments import ResultTable
from repro.viz import render_fig4, render_fig5, render_fig6

RESULTS = pathlib.Path(__file__).resolve().parent.parent / "results"


def _load(name: str) -> ResultTable:
    return ResultTable.from_markdown((RESULTS / f"{name}.md").read_text())


def main() -> None:
    if not RESULTS.exists():
        raise SystemExit("results/ not found — run the benchmark harness first")
    rendered = []

    fig4 = RESULTS / "fig4_training_time.md"
    if fig4.exists():
        table = ResultTable.from_markdown(fig4.read_text())
        for dataset in table.columns:
            out = RESULTS / f"fig4_{dataset}.svg"
            render_fig4(table, out, dataset=dataset)
            rendered.append(out)

    for name, y_label in (("fig5_semi_supervised_forecasting", "test MSE"),
                          ("fig5_semi_supervised_classification", "test ACC %")):
        path = RESULTS / f"{name}.md"
        if path.exists():
            table = ResultTable.from_markdown(path.read_text())
            for dataset in sorted({row.split("@")[0].strip() for row in table.rows}):
                out = RESULTS / f"{name}_{dataset}.svg"
                render_fig5(table, out, dataset=dataset, y_label=y_label)
                rendered.append(out)

    fig6 = RESULTS / "fig6_lambda_sensitivity.md"
    if fig6.exists():
        table = ResultTable.from_markdown(fig6.read_text())
        for column in table.columns:
            safe = column.replace(" ", "_")
            out = RESULTS / f"fig6_{safe}.svg"
            render_fig6(table, out, column=column)
            rendered.append(out)

    if not rendered:
        raise SystemExit("no archived tables found under results/")
    for path in rendered:
        print(f"wrote {path.relative_to(RESULTS.parent)}")


if __name__ == "__main__":
    main()
