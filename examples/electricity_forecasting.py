#!/usr/bin/env python3
"""Electric-power forecasting with limited labels (semi-supervised).

The paper's other motivating application (Informer's ETT setting): predict
transformer oil temperature from power-load series.  This example
reproduces the Fig. 5 story at example scale — when only a fraction of the
windows have usable targets, fine-tuning a pre-trained TimeDRL encoder
beats training the same architecture from scratch.

Run:  python examples/electricity_forecasting.py
"""

from repro.core import (
    PretrainConfig,
    TimeDRL,
    TimeDRLConfig,
    fine_tune_forecasting,
    pretrain,
)
from repro.data import load_forecasting_dataset, make_forecasting_data


def main() -> None:
    series = load_forecasting_dataset("ETTh1", scale=0.08, seed=1)
    data = make_forecasting_data(series, seq_len=64, pred_len=24, stride=4)
    config = TimeDRLConfig(seq_len=64, input_channels=7, patch_len=8, stride=8,
                           d_model=32, num_heads=4, num_layers=2,
                           channel_independence=True, seed=1)

    # Pre-train once on ALL unlabeled windows.
    pretrained = pretrain(config, data.train,
                          PretrainConfig(epochs=3, batch_size=32, seed=1)).model
    state = pretrained.state_dict()

    print(f"{'labels':>8} | {'supervised MSE':>15} | {'TimeDRL (FT) MSE':>17}")
    print("-" * 48)
    for fraction in (0.1, 0.5, 1.0):
        supervised_model = TimeDRL(config)  # random init
        supervised = fine_tune_forecasting(supervised_model, data,
                                           label_fraction=fraction,
                                           epochs=3, seed=1)

        finetuned_model = TimeDRL(config)
        finetuned_model.load_state_dict(state)  # warm start from pre-training
        finetuned = fine_tune_forecasting(finetuned_model, data,
                                          label_fraction=fraction,
                                          epochs=3, seed=1)
        print(f"{fraction:>7.0%} | {supervised.mse:>15.4f} | {finetuned.mse:>17.4f}")

    print("\nThe gap should widen as the label fraction shrinks (paper Fig. 5).")


if __name__ == "__main__":
    main()
