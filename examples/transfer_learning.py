#!/usr/bin/env python3
"""Cross-dataset transfer: a first step toward the paper's foundation model.

The paper's conclusion points at extending TimeDRL "toward a more
comprehensive foundation model".  The minimal measurable version of that
ambition is transfer: pre-train once on one dataset's unlabeled windows,
then probe the *frozen* encoder on a different dataset.  Channel
independence makes this well-posed — the encoder never sees the feature
count, only univariate patch streams.

Run:  python examples/transfer_learning.py
"""

from repro.core import PretrainConfig, TimeDRLConfig, transfer_forecasting
from repro.data import load_forecasting_dataset, make_forecasting_data


def main() -> None:
    config = TimeDRLConfig(seq_len=64, input_channels=7, patch_len=8, stride=8,
                           d_model=32, num_heads=4, num_layers=2,
                           channel_independence=True, seed=0)
    train_config = PretrainConfig(epochs=3, batch_size=32, seed=0)

    source_series = load_forecasting_dataset("ETTh1", scale=0.08, seed=0)
    source = make_forecasting_data(source_series, seq_len=64, pred_len=24, stride=4)

    print(f"{'target':>10} | {'random':>8} | {'transfer':>8} | {'in-domain':>9} | kept")
    print("-" * 55)
    for target_name in ("ETTh2", "Exchange", "Weather"):
        info_scale = 0.08 if target_name.startswith("ETT") else 0.15
        target_series = load_forecasting_dataset(target_name, scale=info_scale, seed=1)
        target = make_forecasting_data(target_series, seq_len=64, pred_len=24, stride=4)
        result = transfer_forecasting(source, target, config, train_config)
        spread = result.random_mse - result.in_domain_mse
        kept = f"{result.transfer_gap:4.0%}" if spread > 1e-3 else "   —"
        print(f"{target_name:>10} | {result.random_mse:8.4f} | "
              f"{result.transfer_mse:8.4f} | {result.in_domain_mse:9.4f} | {kept}")

    print("\n'kept' is the fraction of the in-domain advantage over a random")
    print("encoder that transfer retains (1 = free lunch, 0 = nothing moved);")
    print("'—' marks targets where pre-training gave no in-domain edge to keep.")


if __name__ == "__main__":
    main()
