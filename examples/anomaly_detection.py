#!/usr/bin/env python3
"""Anomaly detection with timestamp-level embeddings (extension).

The paper positions timestamp-level embeddings as the right tool for
"forecasting and anomaly detection" (Section III) but only evaluates
forecasting.  This example builds the anomaly application: the
timestamp-predictive head's reconstruction error, computed per patch,
flags injected anomalies in an industrial-machine-like signal — the
intro's third motivating workload.

Run:  python examples/anomaly_detection.py
"""

import numpy as np

from repro import nn
from repro.core import PretrainConfig, TimeDRLConfig, pretrain
from repro.data import load_forecasting_dataset, make_forecasting_data


def reconstruction_errors(model, x: np.ndarray) -> np.ndarray:
    """Per-patch reconstruction error of the timestamp-predictive head.

    Returns ``(B, T_p)`` — high values mark patches the pre-trained model
    cannot explain, i.e. anomalies.
    """
    model.eval()
    x_patched = model.encoder.prepare_input(x)
    with nn.no_grad():
        z = model.encoder(x_patched)
        __, z_t = model.encoder.split(z)
        recon = model.predictive_head(z_t).data
    per_patch = ((recon - x_patched) ** 2).mean(axis=-1)
    if model.config.channel_independence:  # (B*C, T_p) -> max over channels
        channels = x.shape[2]
        per_patch = per_patch.reshape(x.shape[0], channels, -1).max(axis=1)
    return per_patch


def main() -> None:
    rng = np.random.default_rng(7)
    series = load_forecasting_dataset("ETTh1", scale=0.08, seed=2)
    data = make_forecasting_data(series, seq_len=64, pred_len=0, stride=8)

    config = TimeDRLConfig(seq_len=64, input_channels=7, patch_len=8, stride=8,
                           d_model=32, num_heads=4, num_layers=2,
                           channel_independence=True, seed=2)
    model = pretrain(config, data.train,
                     PretrainConfig(epochs=3, batch_size=32, seed=2)).model

    # Take clean test windows and inject one anomalous patch per window.
    x, __ = data.test.batch(np.arange(min(32, len(data.test))))
    corrupted = x.copy()
    true_patch = rng.integers(0, config.num_patches, size=len(x))
    for index, patch in enumerate(true_patch):
        start = patch * config.patch_len
        spike = 8.0 * rng.standard_normal((config.patch_len, x.shape[2]))
        corrupted[index, start: start + config.patch_len] += spike.astype(np.float32)

    clean_errors = reconstruction_errors(model, x)
    corrupt_errors = reconstruction_errors(model, corrupted)

    flagged = corrupt_errors.argmax(axis=1)
    hits = float(np.mean(flagged == true_patch))
    lift = float(corrupt_errors.max(axis=1).mean() / clean_errors.max(axis=1).mean())
    print(f"windows scored: {len(x)}")
    print(f"anomalous patch localised correctly: {hits:.0%}")
    print(f"error lift on corrupted windows: {lift:.1f}x")
    assert hits > 0.5, "anomaly localisation should beat chance by a wide margin"
    print("\ntimestamp-level embeddings localise the injected anomalies, "
          "as the paper's Section III claims they should.")


if __name__ == "__main__":
    main()
